package tbrt

import (
	"strconv"

	"traceback/internal/trace"
	"traceback/internal/vm"
)

// assignBuffer moves a probationary thread onto a real buffer: the
// first free main buffer, or the shared desperation buffer when none
// is available (paper §3.1.1). A ThreadStart record is written so
// reconstruction can split buffers that house several thread
// lifetimes.
func (rt *Runtime) assignBuffer(t *vm.Thread) *buffer {
	var b *buffer
	if len(rt.free) > 0 {
		b = rt.free[0]
		rt.free = rt.free[1:]
		rt.met.buffersFree.Set(int64(len(rt.free)))
	} else {
		b = rt.desperation
		rt.met.desperations.Inc()
		rt.event("desperation", "tid "+strconv.Itoa(t.TID))
	}
	rt.byThread[t.TID] = b
	rt.hdrWrite(b, hdrOwner, uint32(t.TID))
	rt.hdrWrite(b, hdrLastPtr, 0)

	// Resume where the previous owner stopped (records are gradually
	// overwritten, paper §3.1.2); a fresh buffer starts at the top.
	resume := rt.resumePoint(b)
	rt.setTLSPtr(t, resume)
	rt.appendWordsRaw(t, b, trace.AppendThreadStart(nil, uint32(t.TID), rt.now()))
	return b
}

// resumePoint returns the cursor for a newly assigned buffer: 4 bytes
// before the first data word (the next append lands on word 0), or
// the previous owner's release point.
func (rt *Runtime) resumePoint(b *buffer) uint64 {
	if last := rt.hdrRead(b, hdrLastPtr); last != 0 {
		return uint64(last)
	}
	return b.dataAddr - 4
}

// Traced reports whether tid has left probation: it owns a real
// trace buffer and its history is recoverable from a snap. Fault
// injectors use this to target threads whose snap will carry
// evidence.
func (rt *Runtime) Traced(tid int) bool {
	b := rt.byThread[tid]
	return b != nil && b.kind != bufProbation
}

// allocSlot advances the thread's cursor by one record slot, handling
// sentinel hits (sub-buffer commit / wrap) and returns the slot
// address. TLS is updated to the slot (it becomes the "last written"
// record once the caller stores into it).
func (rt *Runtime) allocSlot(t *vm.Thread, b *buffer) uint64 {
	next := rt.tlsPtr(t) + 4
	if w, ok := rt.proc.ReadU32(next); !ok || w == trace.Sentinel {
		next = rt.wrap(t, b, next)
	}
	rt.setTLSPtr(t, next)
	return next
}

// wrap handles a sentinel hit at address at (paper §3.1, §3.2): the
// just-filled sub-buffer is committed (its index recorded in the
// buffer header) and the next sub-buffer is zeroed so that a dead
// thread's progress can be found by scanning for the last non-zero
// entry. When the final sub-buffer fills, writing wraps to the first.
// Threads in the desperation buffer take this opportunity to move to
// a real buffer if one has freed up (paper §3.1).
func (rt *Runtime) wrap(t *vm.Thread, b *buffer, at uint64) uint64 {
	rt.met.wraps.Inc()
	rt.event("buffer-wrap", "tid "+strconv.Itoa(t.TID))
	if b.kind == bufDesperation && len(rt.free) > 0 {
		nb := rt.assignBuffer(t)
		return rt.allocSlot(t, nb)
	}
	idx, ok := b.wordIndex(at)
	if !ok {
		// Cursor outside the buffer (fresh assignment path): restart
		// at the top.
		idx = b.words - 1
	}
	sub := idx / b.subWords
	if b.subs > 1 {
		rt.hdrWrite(b, hdrCommitted, uint32(sub))
		rt.met.subCommits.Inc()
	}
	nextSub := (sub + 1) % b.subs
	start := nextSub * b.subWords
	// Zero the next sub-buffer's data words, preserving its sentinel.
	for i := start; i < start+b.subWords-1; i++ {
		rt.proc.WriteU32(b.dataAddr+uint64(i)*4, trace.Invalid)
	}
	return b.dataAddr + uint64(start)*4
}

// appendWordsRaw appends words through the thread's cursor.
func (rt *Runtime) appendWordsRaw(t *vm.Thread, b *buffer, words []trace.Word) {
	for _, w := range words {
		slot := rt.allocSlot(t, b)
		rt.proc.WriteU32(slot, w)
	}
}

// appendEvent writes extended records into the thread's buffer. If a
// DAG record is in progress (the cursor points at one), it is
// re-issued after the event so the run's remaining lightweight probes
// OR into a valid slot; reconstruction merges the re-issue (see
// trace.KindReissue).
func (rt *Runtime) appendEvent(t *vm.Thread, words []trace.Word) {
	b := rt.byThread[t.TID]
	if b == nil || b.kind == bufProbation {
		return
	}
	cur, ok := rt.proc.ReadU32(rt.tlsPtr(t))
	rt.appendWordsRaw(t, b, words)
	if ok && trace.IsDAG(cur) && cur != trace.Sentinel {
		rt.appendWordsRaw(t, b, trace.AppendReissueMark(nil))
		slot := rt.allocSlot(t, b)
		rt.proc.WriteU32(slot, cur)
	}
}

// releaseBuffer ends a thread's use of its buffer: a ThreadEnd record
// is written, the release point saved in the header, and the buffer
// freed for reassignment (paper §3.1.2).
func (rt *Runtime) releaseBuffer(t *vm.Thread, orderly bool) {
	b := rt.byThread[t.TID]
	if b == nil {
		return
	}
	delete(rt.byThread, t.TID)
	if b.kind == bufProbation {
		return
	}
	if orderly {
		rt.appendWordsRaw(t, b, trace.AppendThreadEnd(nil, uint32(t.TID), rt.now()))
		rt.hdrWrite(b, hdrLastPtr, uint32(rt.tlsPtr(t)))
	} else {
		// Abrupt death: the thread's TLS is considered lost. Park the
		// cursor at the start of the first uncommitted sub-buffer and
		// write the termination record there; the dead thread's
		// uncommitted tail is sacrificed (paper §3.1.2, §3.2).
		committed := int(rt.hdrRead(b, hdrCommitted))
		start := ((committed + 1) % b.subs) * b.subWords
		rt.hdrWrite(b, hdrLastPtr, uint32(b.dataAddr+uint64(start)*4-4))
	}
	if b.kind == bufMain {
		rt.hdrWrite(b, hdrOwner, 0)
		rt.free = append(rt.free, b)
		rt.met.buffersFree.Set(int64(len(rt.free)))
	}
}

// ScavengeDeadThreads looks for threads that terminated without
// notifying the runtime (abrupt kills) and reclaims their buffers
// (paper §3.1.2's dead-thread scavenging pass).
func (rt *Runtime) ScavengeDeadThreads() int {
	n := 0
	for tid, b := range rt.byThread {
		t := rt.proc.Threads[tid]
		if t == nil || (t.State == vm.Exited && t.KilledAbruptly) {
			_ = b
			rt.releaseBuffer(t, false)
			rt.met.scavenges.Inc()
			rt.event("scavenge", "tid "+strconv.Itoa(tid))
			n++
		}
	}
	return n
}
