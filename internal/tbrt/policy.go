package tbrt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Policy controls snap triggers and suppression (paper §3.6: "a
// textual policy file that the runtime reads as it starts up").
type Policy struct {
	// Exceptions lists signal names that trigger snaps; "*" matches
	// all. Entries prefixed with "!" are exclusions.
	Exceptions []string
	// API enables the program snap API trigger.
	API bool
	// Hang enables service-detected hang snaps.
	Hang bool
	// Fatal enables a snap at abnormal process termination.
	Fatal bool
	// MaxRepeat is the number of snaps allowed for the same trigger
	// (same exception at the same location) before suppression
	// (paper §3.6.2). 0 means 1.
	MaxRepeat int
}

func (p Policy) withDefaults() Policy {
	if p.Exceptions == nil {
		p.Exceptions = []string{"*"}
	}
	if p.MaxRepeat == 0 {
		p.MaxRepeat = 1
	}
	return p
}

// DefaultPolicy snaps on every exception, API call, hang, and fatal
// exit, with single-shot suppression.
func DefaultPolicy() Policy {
	return Policy{Exceptions: []string{"*"}, API: true, Hang: true, Fatal: true, MaxRepeat: 1}
}

// snapOnException evaluates the exception trigger for a signal name.
func (p Policy) snapOnException(sig int) bool {
	name := signalNameForPolicy(sig)
	match := false
	for _, e := range p.Exceptions {
		if excl := strings.HasPrefix(e, "!"); excl {
			if strings.EqualFold(e[1:], name) {
				return false
			}
			continue
		}
		if e == "*" || strings.EqualFold(e, name) {
			match = true
		}
	}
	return match
}

// ParsePolicy reads the textual policy format:
//
//	# comment
//	snap exception *          # or a signal name: snap exception SIGSEGV
//	nosnap exception SIGFPE
//	snap api
//	snap hang
//	snap fatal
//	suppress 2                # allow 2 snaps per identical trigger
//
// Unknown directives are errors; a line's fields are whitespace-split.
func ParsePolicy(r io.Reader) (Policy, error) {
	var p Policy
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "snap", "nosnap":
			if len(f) < 2 {
				return p, fmt.Errorf("policy line %d: %q needs a trigger", lineNo, f[0])
			}
			on := f[0] == "snap"
			switch f[1] {
			case "exception":
				if len(f) < 3 {
					return p, fmt.Errorf("policy line %d: exception needs a signal or *", lineNo)
				}
				sig := f[2]
				if !on {
					sig = "!" + sig
				}
				p.Exceptions = append(p.Exceptions, sig)
			case "api":
				p.API = on
			case "hang":
				p.Hang = on
			case "fatal":
				p.Fatal = on
			default:
				return p, fmt.Errorf("policy line %d: unknown trigger %q", lineNo, f[1])
			}
		case "suppress":
			if len(f) < 2 {
				return p, fmt.Errorf("policy line %d: suppress needs a count", lineNo)
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 1 {
				return p, fmt.Errorf("policy line %d: bad suppress count %q", lineNo, f[1])
			}
			p.MaxRepeat = n
		default:
			return p, fmt.Errorf("policy line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return p, err
	}
	return p.withDefaults(), nil
}

func signalNameForPolicy(sig int) string {
	// Reuse the VM's naming but avoid importing vm here... it is
	// already imported by hooks; keep one source of truth.
	return vmSignalName(sig)
}
