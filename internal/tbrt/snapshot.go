package tbrt

import (
	"fmt"
	"sort"
	"time"

	"traceback/internal/snap"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

func vmSignalName(sig int) string { return vm.SignalName(sig) }

// SnapReason describes a snap trigger.
type SnapReason struct {
	Kind   string // "exception", "api", "hang", "external", "group"
	Detail string
	TID    int
	Signal int
	Addr   uint64
}

func (r SnapReason) String() string {
	if r.Detail != "" {
		return r.Kind + " " + r.Detail
	}
	return r.Kind
}

// suppressKey identifies "the same snap trigger" for suppression: the
// same exception from the same program location (paper §3.6.2).
func (r SnapReason) suppressKey() string {
	return fmt.Sprintf("%s/%d/%d", r.Kind, r.Signal, r.Addr)
}

// TakeSnap collects the buffers and metadata into a snap, under
// suppression control. In the deterministic VM all other threads are
// implicitly suspended while host code runs, giving the globally
// consistent picture the paper obtains by suspending threads.
// Returns nil when suppressed.
func (rt *Runtime) TakeSnap(reason SnapReason) *snap.Snap {
	key := reason.suppressKey()
	rt.suppress[key]++
	if rt.suppress[key] > rt.cfg.Policy.MaxRepeat {
		rt.met.suppressed.Inc()
		return nil
	}
	// Annotate the triggering thread's trace.
	if reason.TID != 0 {
		if t := rt.proc.Threads[reason.TID]; t != nil {
			rt.appendEvent(t, trace.AppendSnapMark(nil, rt.now()))
		}
	}
	s := rt.buildSnap(reason)
	rt.snaps = append(rt.snaps, s)
	if rt.cfg.SnapSink != nil {
		rt.cfg.SnapSink(s)
	}
	return s
}

// PolicyHang reports whether the policy allows hang-triggered snaps
// (consulted by the service process).
func (rt *Runtime) PolicyHang() bool { return rt.cfg.Policy.Hang }

// PostMortemSnap builds a snap from a process that died abruptly
// (kill -9): everything is read back out of the process's memory —
// the "buffers reside in memory mapped files, so they can be easily
// copied by another process" path (paper §3.1). No suppression.
func (rt *Runtime) PostMortemSnap() *snap.Snap {
	s := rt.buildSnap(SnapReason{Kind: "external", Detail: "post-mortem"})
	rt.snaps = append(rt.snaps, s)
	if rt.cfg.SnapSink != nil {
		rt.cfg.SnapSink(s)
	}
	return s
}

// buildSnap assembles the snap and records the host-side build
// latency and captured trace volume (host wall time only — the VM
// clock is never charged, so instrumenting the snap path cannot
// perturb the paper's cycle ratios).
func (rt *Runtime) buildSnap(reason SnapReason) *snap.Snap {
	t0 := time.Now()
	defer func() { rt.met.snapNanos.Observe(uint64(time.Since(t0))) }()
	rt.met.snaps.Inc()
	rt.event("snap", reason.String())
	p := rt.proc
	s := &snap.Snap{
		Host:       p.Machine.Name,
		Process:    p.Name,
		PID:        p.PID,
		RuntimeID:  rt.ID,
		Reason:     reason.String(),
		TriggerTID: uint32(reason.TID),
		Signal:     reason.Signal,
		FaultAddr:  reason.Addr,
		Time:       p.Machine.Timestamp(),
	}
	for _, li := range rt.modules {
		lm := li.lm
		mi := snap.ModuleInfo{
			Name:          lm.Mod.Name,
			Checksum:      lm.Mod.ChecksumHex(),
			ActualDAGBase: lm.DAGBase,
			DAGCount:      lm.Mod.DAGCount,
			CodeBase:      lm.CodeBase,
			CodeLen:       uint32(len(lm.Mod.Code)),
			Unloaded:      lm.Unloaded,
			BadDAG:        li.badDAG,
		}
		// Memory dump of the data segment (paper §3.6: snaps may
		// include a memory dump for variable display).
		if !rt.cfg.NoMemoryDump {
			size := uint64(len(lm.Mod.Data)) + uint64(lm.Mod.BSS)
			if size > 0 {
				if b, ok := p.ReadBytes(uint64(lm.DataBase), size); ok {
					mi.DataBase = lm.DataBase
					mi.DataDump = b
				}
			}
		}
		s.Modules = append(s.Modules, mi)
	}
	all := append([]*buffer{}, rt.buffers...)
	all = append(all, rt.static, rt.desperation)
	words := 0
	for _, b := range all {
		s.Buffers = append(s.Buffers, rt.dumpBuffer(b))
		words += b.words
	}
	rt.met.snapWords.Observe(uint64(words))
	for id := range rt.partners {
		s.Partners = append(s.Partners, id)
	}
	sort.Slice(s.Partners, func(i, j int) bool { return s.Partners[i] < s.Partners[j] })
	return s
}

// dumpBuffer reads one buffer's header and words out of process
// memory. The last-written pointer is taken from the live owner's TLS
// when trustworthy, from the header's release pointer otherwise;
// after an abrupt kill neither exists and reconstruction falls back
// to the committed-sub-buffer scan (LastKnown=false).
func (rt *Runtime) dumpBuffer(b *buffer) snap.BufferDump {
	d := snap.BufferDump{
		Kind:         snapKind(b.kind),
		OwnerTID:     rt.hdrRead(b, hdrOwner),
		CommittedSub: rt.hdrRead(b, hdrCommitted),
		SubWords:     uint32(b.subWords),
	}
	words := make([]uint32, b.words)
	for i := range words {
		words[i], _ = rt.proc.ReadU32(b.dataAddr + uint64(i)*4)
	}
	d.SetWords(words)

	if owner := rt.proc.Threads[int(d.OwnerTID)]; owner != nil && d.OwnerTID != 0 {
		if owner.KilledAbruptly {
			// TLS lost with the thread (paper §3.2).
			d.LastKnown = false
		} else if idx, ok := b.wordIndex(rt.tlsPtr(owner)); ok {
			d.LastPtr = uint32(idx)
			d.LastKnown = true
		}
	} else if last := rt.hdrRead(b, hdrLastPtr); last != 0 {
		if idx, ok := b.wordIndex(uint64(last)); ok {
			d.LastPtr = uint32(idx)
			d.LastKnown = true
		}
	}
	if b.kind == bufDesperation {
		// Shared unsynchronized writes: contents are declared
		// unrecoverable (paper §3.1).
		d.LastKnown = false
	}
	return d
}

func snapKind(k int) snap.BufferKind {
	switch k {
	case bufStatic:
		return snap.BufStatic
	case bufProbation:
		return snap.BufProbation
	case bufDesperation:
		return snap.BufDesperation
	}
	return snap.BufMain
}
