package tbrt

import (
	"bytes"
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/vm"
)

// TestRuntimeTelemetry drives a wrap-heavy run and checks that the
// registry and flight recorder saw it: counters match the legacy
// accessors, the buffer gauge is consistent, and buffer-wrap events
// landed in the ring with the machine clock attached.
func TestRuntimeTelemetry(t *testing.T) {
	loop := &module.Module{
		Name: "spin",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 500},
			{Op: isa.ADDI, A: 1, B: 1, Imm: -1},
			{Op: isa.BGT, A: 1, B: 0, Imm: 1},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 5, Exported: true}},
	}
	res := instr(t, loop, core.Options{})
	p, rt, _ := newRT(t, Config{BufferWords: 64, SubBuffers: 4, NumBuffers: 2})
	if _, err := p.Load(res.Module); err != nil {
		t.Fatal(err)
	}
	p.StartMain(0)
	if err := vm.RunProcess(p, 1_000_000); err != nil {
		t.Fatal(err)
	}

	reg := rt.Metrics()
	wraps := reg.Counter("tbrt_wraps_total", "").Load()
	if wraps == 0 || int(wraps) != rt.Wraps() {
		t.Errorf("registry wraps %d vs accessor %d", wraps, rt.Wraps())
	}
	if got := reg.Counter("tbrt_subcommits_total", "").Load(); int(got) != rt.SubCommits() {
		t.Errorf("registry subcommits %d vs accessor %d", got, rt.SubCommits())
	}
	free := reg.Gauge("tbrt_buffers_free", "").Load()
	total := reg.Gauge("tbrt_buffers_total", "").Load()
	if total != 2 || free < 0 || free > total {
		t.Errorf("buffer gauges free=%d total=%d", free, total)
	}

	events := rt.FlightRecorder().Events()
	var lastClock uint64
	sawWrap := false
	for _, e := range events {
		if e.Kind == "buffer-wrap" {
			sawWrap = true
			if e.Clock < lastClock {
				t.Errorf("flight clocks not monotone: %d after %d", e.Clock, lastClock)
			}
			lastClock = e.Clock
		}
	}
	if !sawWrap {
		t.Errorf("no buffer-wrap flight event among %d events", len(events))
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tbrt_wraps_total", "tbrt_buffers_free", "tbrt_snap_nanos_bucket"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s:\n%s", want, buf.String())
		}
	}
}
