package tbrt

import "traceback/internal/telemetry"

// rtMetrics bundles the runtime's registry-backed self-telemetry.
// Handles are resolved once at runtime creation; every hot-path
// update is a single atomic operation (paper-side overhead stays in
// VM cycles, which telemetry never touches).
type rtMetrics struct {
	wraps        *telemetry.Counter
	subCommits   *telemetry.Counter
	desperations *telemetry.Counter
	rebased      *telemetry.Counter
	badDAGs      *telemetry.Counter
	scavenges    *telemetry.Counter
	snaps        *telemetry.Counter
	suppressed   *telemetry.Counter
	syncs        *telemetry.Counter
	buffersFree  *telemetry.Gauge
	buffersTotal *telemetry.Gauge
	snapNanos    *telemetry.Histogram
	snapWords    *telemetry.Histogram
}

func (rt *Runtime) initMetrics() {
	reg := rt.cfg.Telemetry
	rt.met = rtMetrics{
		wraps:        reg.Counter("tbrt_wraps_total", "trace buffer sentinel hits (sub-buffer wraps)"),
		subCommits:   reg.Counter("tbrt_subcommits_total", "sub-buffer commit points recorded"),
		desperations: reg.Counter("tbrt_desperations_total", "threads assigned to the shared desperation buffer"),
		rebased:      reg.Counter("tbrt_rebased_total", "modules whose DAG range was rebased at load"),
		badDAGs:      reg.Counter("tbrt_baddags_total", "modules demoted to the bad-DAG ID (untraced)"),
		scavenges:    reg.Counter("tbrt_scavenges_total", "dead-thread buffers reclaimed by scavenging"),
		snaps:        reg.Counter("tbrt_snaps_total", "snaps written"),
		suppressed:   reg.Counter("tbrt_snaps_suppressed_total", "snap triggers suppressed by policy"),
		syncs:        reg.Counter("tbrt_rpc_syncs_total", "SYNC records written for RPC stitching"),
		buffersFree:  reg.Gauge("tbrt_buffers_free", "main trace buffers currently unassigned"),
		buffersTotal: reg.Gauge("tbrt_buffers_total", "main trace buffers configured"),
		snapNanos:    reg.Histogram("tbrt_snap_nanos", "host-side snap build+write latency", telemetry.DurationBuckets()),
		snapWords:    reg.Histogram("tbrt_snap_words", "trace words captured per snap", telemetry.SizeBuckets()),
	}
	rt.rec = reg.Recorder(rt.cfg.EventBuffer)
}

// event records a flight-recorder entry stamped with the
// deterministic machine clock.
func (rt *Runtime) event(kind, detail string) {
	rt.rec.Record(rt.proc.Machine.Clock(), kind, detail)
}

// Metrics returns the registry the runtime instruments itself on.
func (rt *Runtime) Metrics() *telemetry.Registry { return rt.cfg.Telemetry }

// FlightRecorder returns the runtime's event ring.
func (rt *Runtime) FlightRecorder() *telemetry.Recorder { return rt.rec }

// Legacy stat accessors, kept for tests and benches that predate the
// registry; they are views over the registry counters.

// Wraps counts buffer sentinel hits.
func (rt *Runtime) Wraps() int { return int(rt.met.wraps.Load()) }

// SubCommits counts sub-buffer commits.
func (rt *Runtime) SubCommits() int { return int(rt.met.subCommits.Load()) }

// Desperations counts desperation-buffer assignments.
func (rt *Runtime) Desperations() int { return int(rt.met.desperations.Load()) }

// Rebased counts load-time DAG range rebases.
func (rt *Runtime) Rebased() int { return int(rt.met.rebased.Load()) }

// BadDAGs counts modules demoted to the bad-DAG ID.
func (rt *Runtime) BadDAGs() int { return int(rt.met.badDAGs.Load()) }
