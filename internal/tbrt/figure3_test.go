package tbrt

import (
	"testing"

	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/snap"
	"traceback/internal/vm"
)

// TestFigure3BufferAssignment reproduces the paper's Figure 3 state:
// a runtime configured with two main trace buffers and four active
// instrumented threads. Two threads own the main buffers; the other
// two write into the shared desperation buffer.
func TestFigure3BufferAssignment(t *testing.T) {
	// Four workers spin long enough to coexist; main joins them all.
	code := []isa.Instr{
		{Op: isa.MOVI, A: 9, Imm: 0}, // 0: spawned counter
		{Op: isa.LDFN, A: 1, Imm: 1}, // 1: loop head
		{Op: isa.MOVI, A: 2, Imm: 0},
		{Op: isa.SYS, Imm: isa.SysThreadCreate},
		{Op: isa.ADDI, A: 9, B: 9, Imm: 1},
		{Op: isa.MOVI, A: 10, Imm: 4},
		{Op: isa.BLT, A: 9, B: 10, Imm: 1},
		// join tids 2..5
		{Op: isa.MOVI, A: 8, Imm: 2}, // 7: join loop
		{Op: isa.MOV, A: 1, B: 8},
		{Op: isa.SYS, Imm: isa.SysThreadJoin},
		{Op: isa.ADDI, A: 8, B: 8, Imm: 1},
		{Op: isa.MOVI, A: 10, Imm: 6},
		{Op: isa.BLT, A: 8, B: 10, Imm: 8},
		{Op: isa.MOVI, A: 1, Imm: 0},
		{Op: isa.SYS, Imm: isa.SysExit},
		// worker: busy loop with probes (instr 15)
		{Op: isa.MOVI, A: 5, Imm: 800},
		{Op: isa.ADDI, A: 5, B: 5, Imm: -1},
		{Op: isa.BGT, A: 5, B: 0, Imm: 16},
		{Op: isa.RET},
	}
	m := &module.Module{Name: "fig3", Code: code,
		Funcs: []module.Func{
			{Name: "main", Entry: 0, End: 15, Exported: true},
			{Name: "worker", Entry: 15, End: 19},
		}}
	res, err := core.Instrument(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, rt, mach := newRT(t, Config{NumBuffers: 2, BufferWords: 4096, SubBuffers: 2})
	p.Load(res.Module)
	p.StartMain(0)
	// Run until all four workers have been spawned and started
	// probing, but before they finish.
	mach.World.Run(40, nil)
	if len(p.Threads) < 5 {
		t.Fatalf("only %d threads spawned", len(p.Threads))
	}
	// Figure 3: two buffers owned, extra threads in desperation.
	owned := 0
	desperate := 0
	for _, b := range rt.byThread {
		switch b.kind {
		case bufMain:
			owned++
		case bufDesperation:
			desperate++
		}
	}
	if owned != 2 {
		t.Errorf("%d threads own main buffers, want 2", owned)
	}
	if desperate < 1 {
		t.Errorf("%d threads in the desperation buffer, want >= 1", desperate)
	}
	// Run to completion: correctness is unaffected by buffer
	// starvation (paper §3.1: the program executes properly).
	if err := vm.RunProcess(p, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.FatalSignal != 0 || p.ExitCode != 0 {
		t.Fatalf("sig=%s exit=%d", vm.SignalName(p.FatalSignal), p.ExitCode)
	}
	// The desperation buffer is declared unrecoverable in the snap.
	s := rt.PostMortemSnap()
	for _, b := range s.Buffers {
		if b.Kind == snap.BufDesperation && b.LastKnown {
			t.Error("desperation buffer claims a recoverable pointer")
		}
	}
}

// TestLogicalClock: on platforms without a high-resolution timer the
// runtime falls back to a logical clock that still orders
// synchronization events monotonically (paper §3.5).
func TestLogicalClock(t *testing.T) {
	res := instr(t, fig2(), core.Options{})
	p, rt, _ := newRT(t, Config{UseLogicalClock: true})
	p.Load(res.Module)
	p.StartMain(0)
	vm.RunProcess(p, 100000)
	s := rt.PostMortemSnap()
	recs := mainBufferRecords(t, s, 1)
	var last uint64
	for _, r := range recs {
		var ts uint64
		switch r.Kind {
		case 5, 6: // thread start/end
			if len(r.Payload) == 3 {
				ts = uint64(r.Payload[1]) | uint64(r.Payload[2])<<32
			}
		}
		if ts != 0 {
			if ts < last {
				t.Errorf("logical clock went backwards: %d after %d", ts, last)
			}
			last = ts
		}
	}
	if last == 0 {
		t.Fatal("no logical timestamps found")
	}
	// Logical clocks are small counters, not machine cycles.
	if last > 1000 {
		t.Errorf("logical clock value %d looks like a hardware timestamp", last)
	}
}
