package tbrt

import (
	"testing"

	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/snap"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// TestTLSSlotRebasing: when the default TLS index is unavailable, the
// runtime rewrites every probe's TLS slot through the fixup table at
// load (paper §2.5) — and tracing still works.
func TestTLSSlotRebasing(t *testing.T) {
	res := instr(t, fig2(), core.Options{})
	p, rt, _ := newRT(t, Config{TLSSlot: 20})
	if _, err := p.Load(res.Module); err != nil {
		t.Fatal(err)
	}
	// Every TLS-touching probe instruction now uses slot 20.
	lm := p.Modules[0]
	for _, fx := range res.Module.TLSFixups {
		in := p.Code[lm.CodeBase+fx]
		if in.C != 20 {
			t.Fatalf("fixup at %d still uses slot %d", fx, in.C)
		}
	}
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunProcess(p, 100000); err != nil {
		t.Fatal(err)
	}
	if p.FatalSignal != 0 {
		t.Fatalf("faulted: %s", vm.SignalName(p.FatalSignal))
	}
	s := rt.PostMortemSnap()
	recs := mainBufferRecords(t, s, 1)
	dagCount := 0
	for _, r := range recs {
		if r.Kind == trace.KindNone {
			dagCount++
		}
	}
	if dagCount != 3 {
		t.Errorf("%d DAG records with rebased TLS slot, want 3", dagCount)
	}
}

// TestScavengeDeadThreads: a thread killed abruptly (kill -9) never
// notifies the runtime; the scavenging pass reclaims its buffer for
// reassignment (paper §3.1.2), sacrificing only the uncommitted tail.
func TestScavengeDeadThreads(t *testing.T) {
	// main spawns a worker that loops forever, kills it with signal
	// 9, then exits.
	code := []isa.Instr{
		{Op: isa.LDFN, A: 1, Imm: 1},
		{Op: isa.MOVI, A: 2, Imm: 0},
		{Op: isa.SYS, Imm: isa.SysThreadCreate},
		{Op: isa.MOV, A: 8, B: 0}, // worker tid
		{Op: isa.MOVI, A: 1, Imm: 5000},
		{Op: isa.SYS, Imm: isa.SysSleep}, // let the worker run a while
		{Op: isa.MOV, A: 1, B: 8},
		{Op: isa.MOVI, A: 2, Imm: vm.SigKill},
		{Op: isa.SYS, Imm: isa.SysKill},
		{Op: isa.MOVI, A: 1, Imm: 0},
		{Op: isa.SYS, Imm: isa.SysExit},
		// worker: infinite loop with probes
		{Op: isa.MOVI, A: 5, Imm: 0}, // 11
		{Op: isa.ADDI, A: 5, B: 5, Imm: 1},
		{Op: isa.JMP, Imm: 12},
	}
	m := &module.Module{Name: "scav", Code: code,
		Funcs: []module.Func{
			{Name: "main", Entry: 0, End: 11, Exported: true},
			{Name: "worker", Entry: 11, End: 14},
		}}
	res := instr(t, m, core.Options{})
	p, rt, mach := newRT(t, Config{NumBuffers: 2, BufferWords: 256, SubBuffers: 4})
	p.Load(res.Module)
	p.StartMain(0)
	mach.World.Run(3000, nil)

	// The worker must be dead now (killed by main).
	worker := p.Threads[2]
	if worker == nil || !worker.KilledAbruptly {
		t.Fatalf("worker not abruptly dead: %+v", worker)
	}
	freeBefore := len(rt.free)
	n := rt.ScavengeDeadThreads()
	if n != 1 {
		t.Fatalf("scavenged %d threads, want 1", n)
	}
	if len(rt.free) != freeBefore+1 {
		t.Errorf("buffer not reclaimed: %d free, was %d", len(rt.free), freeBefore)
	}
	// The reclaimed buffer's committed sub-buffers still reconstruct.
	s := rt.PostMortemSnap()
	found := false
	for _, b := range s.Buffers {
		if b.Kind != snap.BufMain {
			continue
		}
		words := b.Words()
		span := trace.StripSentinels(words)
		if len(trace.MineBackward(span)) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no records recoverable after scavenging")
	}
}

// TestStaticBufferFallback: with zero main buffers every thread that
// runs instrumented code lands in the desperation buffer; the static
// buffer config keeps the runtime functional.
func TestNoMainBuffers(t *testing.T) {
	res := instr(t, fig2(), core.Options{})
	p, rt, _ := newRT(t, Config{NumBuffers: -1}) // withDefaults treats <0 as given
	_ = rt
	if _, err := p.Load(res.Module); err != nil {
		t.Fatal(err)
	}
	p.StartMain(0)
	if err := vm.RunProcess(p, 100000); err != nil {
		t.Fatal(err)
	}
	if p.FatalSignal != 0 {
		t.Fatalf("program must run correctly even without buffers: %s",
			vm.SignalName(p.FatalSignal))
	}
}
