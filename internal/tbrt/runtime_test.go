package tbrt

import (
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/snap"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// fig2 is the Figure 2 program: diamond, call, return, exit via SYS.
func fig2() *module.Module {
	return &module.Module{
		Name: "fig2",
		Code: []isa.Instr{
			{Op: isa.BEQ, A: 1, B: 2, Imm: 3},
			{Op: isa.MOVI, A: 3, Imm: 1},
			{Op: isa.JMP, Imm: 4},
			{Op: isa.MOVI, A: 3, Imm: 2},
			{Op: isa.CALL, Imm: 8},
			{Op: isa.ADD, A: 4, B: 0, C: 3},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
			{Op: isa.MOVI, A: 0, Imm: 7}, // rpc
			{Op: isa.RET},
		},
		Funcs: []module.Func{
			{Name: "main", Entry: 0, End: 8, Exported: true},
			{Name: "rpc", Entry: 8, End: 10},
		},
		Files: []string{"fig2.mc"},
		Lines: []module.LineEntry{
			{Index: 0, File: 0, Line: 1}, {Index: 1, File: 0, Line: 2},
			{Index: 3, File: 0, Line: 3}, {Index: 4, File: 0, Line: 4},
			{Index: 5, File: 0, Line: 5}, {Index: 6, File: 0, Line: 6},
			{Index: 8, File: 0, Line: 10},
		},
	}
}

func instr(t *testing.T, m *module.Module, opts core.Options) *core.Result {
	t.Helper()
	res, err := core.Instrument(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newRT(t *testing.T, cfg Config) (*vm.Process, *Runtime, *vm.Machine) {
	t.Helper()
	w := vm.NewWorld(7)
	m := w.NewMachine("host", 0)
	p, rt, err := NewProcess(m, "app", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, rt, m
}

// mainBufferRecords returns mined records (oldest first) of the main
// buffer that owns/owned tid, using the snap's last pointer.
func mainBufferRecords(t *testing.T, s *snap.Snap, tid uint32) []trace.Record {
	t.Helper()
	for _, b := range s.Buffers {
		if b.Kind != snap.BufMain {
			continue
		}
		words := b.Words()
		if !b.LastKnown {
			continue
		}
		span := trace.StripSentinels(words[:b.LastPtr+1])
		recs := trace.MineBackward(span)
		trace.Reverse(recs)
		for _, r := range recs {
			if r.Kind == trace.KindThreadStart {
				if ev, err := trace.DecodeThreadEvent(r); err == nil && ev.TID == tid {
					return recs
				}
			}
		}
	}
	t.Fatalf("no main buffer for tid %d", tid)
	return nil
}

func TestEndToEndTraceRecords(t *testing.T) {
	res := instr(t, fig2(), core.Options{})
	p, rt, _ := newRT(t, Config{})
	if _, err := p.Load(res.Module); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunProcess(p, 100000); err != nil {
		t.Fatal(err)
	}
	if p.FatalSignal != 0 {
		t.Fatalf("program faulted: %s", vm.SignalName(p.FatalSignal))
	}
	s := rt.PostMortemSnap()
	recs := mainBufferRecords(t, s, 1)

	var dags []uint32
	var bits []trace.Word
	for _, r := range recs {
		if r.Kind == trace.KindNone {
			dags = append(dags, r.DAGID)
			bits = append(bits, r.Bits)
		}
	}
	// Entry DAG (0), rpc's DAG (2), return-point DAG (1).
	want := []uint32{0, 2, 1}
	if len(dags) != len(want) {
		t.Fatalf("DAG records = %v, want %v", dags, want)
	}
	for i := range want {
		if dags[i] != want[i] {
			t.Fatalf("DAG records = %v, want %v", dags, want)
		}
	}
	// r1 == r2 == 0 at entry, so the BEQ takes the branch to block C
	// (bit for C set, bit for B clear): exactly one path bit set.
	if bits[0] == 0 || bits[0]&(bits[0]-1) != 0 {
		t.Errorf("entry DAG path bits = %#x, want exactly one bit", bits[0])
	}
	// Orderly exit: ThreadEnd record present.
	foundEnd := false
	for _, r := range recs {
		if r.Kind == trace.KindThreadEnd {
			foundEnd = true
		}
	}
	if !foundEnd {
		t.Error("no thread-end record after orderly exit")
	}
}

func TestBufferWrapAndSubCommit(t *testing.T) {
	// A loop long enough to wrap a tiny buffer several times.
	loop := &module.Module{
		Name: "spin",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 500},
			{Op: isa.ADDI, A: 1, B: 1, Imm: -1}, // loop head (becomes a DAG header)
			{Op: isa.BGT, A: 1, B: 0, Imm: 1},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 5, Exported: true}},
	}
	res := instr(t, loop, core.Options{})
	p, rt, _ := newRT(t, Config{BufferWords: 64, SubBuffers: 4, NumBuffers: 2})
	if _, err := p.Load(res.Module); err != nil {
		t.Fatal(err)
	}
	p.StartMain(0)
	if err := vm.RunProcess(p, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if rt.Wraps() == 0 || rt.SubCommits() == 0 {
		t.Errorf("wraps=%d subCommits=%d, want both > 0", rt.Wraps(), rt.SubCommits())
	}
	s := rt.PostMortemSnap()
	// The wrapped buffer still mines to valid records.
	for _, b := range s.Buffers {
		if b.Kind == snap.BufMain && b.LastKnown {
			words := b.Words()
			span := append(append([]uint32{}, words[b.LastPtr+1:]...), words[:b.LastPtr+1]...)
			recs := trace.MineBackward(trace.StripSentinels(span))
			if len(recs) < 5 {
				t.Errorf("wrapped buffer mined only %d records", len(recs))
			}
			for _, r := range recs {
				if r.Kind == trace.KindNone && r.DAGID > 10 {
					t.Errorf("implausible DAG ID %d from wrapped buffer", r.DAGID)
				}
			}
			return
		}
	}
	t.Fatal("no recoverable main buffer")
}

func TestExceptionRecordAndSnap(t *testing.T) {
	m := &module.Module{
		Name: "div0",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 1},
			{Op: isa.MOVI, A: 2, Imm: 0},
			{Op: isa.DIV, A: 3, B: 1, C: 2},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 4, Exported: true}},
	}
	res := instr(t, m, core.Options{})
	p, rt, _ := newRT(t, Config{Policy: DefaultPolicy()})
	p.Load(res.Module)
	p.StartMain(0)
	vm.RunProcess(p, 100000)
	if p.FatalSignal != vm.SigFpe {
		t.Fatalf("signal = %s", vm.SignalName(p.FatalSignal))
	}
	snaps := rt.Snaps()
	if len(snaps) == 0 {
		t.Fatal("no snap taken on exception")
	}
	s := snaps[0]
	if s.Signal != vm.SigFpe || !strings.Contains(s.Reason, "SIGFPE") {
		t.Errorf("snap reason=%q signal=%d", s.Reason, s.Signal)
	}
	// The exception record is in the trace with the faulting address.
	recs := mainBufferRecords(t, s, 1)
	var exc *trace.Exception
	for _, r := range recs {
		if r.Kind == trace.KindException {
			e, err := trace.DecodeException(r)
			if err != nil {
				t.Fatal(err)
			}
			exc = &e
		}
	}
	if exc == nil {
		t.Fatal("no exception record")
	}
	if exc.Code != vm.SigFpe {
		t.Errorf("exception code = %d", exc.Code)
	}
	if exc.Addr != s.FaultAddr {
		t.Errorf("exception addr %d != snap fault addr %d", exc.Addr, s.FaultAddr)
	}
	// The faulting instruction must be the DIV.
	if op := p.Code[exc.Addr].Op; op != isa.DIV {
		t.Errorf("fault addr points at %v, want div", op)
	}
}

func TestSnapSuppression(t *testing.T) {
	// A loop that handles SIGFPE and keeps dividing by zero: only
	// MaxRepeat snaps for the same location.
	m := &module.Module{
		Name: "fpeloop",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: vm.SigFpe}, // 0
			{Op: isa.LDFN, A: 2, Imm: 1},         // handler addr (post-instrumentation)
			{Op: isa.SYS, Imm: isa.SysSignal},
			{Op: isa.MOVI, A: 8, Imm: 3}, // 3 iterations
			{Op: isa.MOVI, A: 5, Imm: 1}, // 4 loop head
			{Op: isa.MOVI, A: 6, Imm: 0},
			{Op: isa.DIV, A: 7, B: 5, C: 6}, // faults every iteration
			{Op: isa.ADDI, A: 8, B: 8, Imm: -1},
			{Op: isa.BGT, A: 8, B: 0, Imm: 4},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit}, // 10
			{Op: isa.RET},                   // 11 handler: just return
		},
		Funcs: []module.Func{
			{Name: "main", Entry: 0, End: 11, Exported: true},
			{Name: "handler", Entry: 11, End: 12},
		},
	}
	res := instr(t, m, core.Options{})
	p, rt, _ := newRT(t, Config{Policy: Policy{Exceptions: []string{"*"}, MaxRepeat: 1, Fatal: true}})
	p.Load(res.Module)
	p.StartMain(0)
	vm.RunProcess(p, 1_000_000)
	if p.FatalSignal != 0 {
		t.Fatalf("program should survive handled FPEs, got %s", vm.SignalName(p.FatalSignal))
	}
	if len(rt.Snaps()) != 1 {
		t.Errorf("%d snaps, want 1 (suppression)", len(rt.Snaps()))
	}
}

func TestKillMinus9PostMortem(t *testing.T) {
	loop := &module.Module{
		Name: "spin",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 1 << 30},
			{Op: isa.ADDI, A: 1, B: 1, Imm: -1},
			{Op: isa.BGT, A: 1, B: 0, Imm: 1},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 4, Exported: true}},
	}
	res := instr(t, loop, core.Options{})
	p, rt, m := newRT(t, Config{BufferWords: 256, SubBuffers: 4})
	p.Load(res.Module)
	p.StartMain(0)
	m.World.Run(5000, nil)
	m.KillProcess(p)

	s := rt.PostMortemSnap()
	var found bool
	for _, b := range s.Buffers {
		if b.Kind != snap.BufMain || b.OwnerTID == 0 {
			continue
		}
		found = true
		if b.LastKnown {
			t.Error("LastPtr claimed known after abrupt kill (TLS is lost)")
		}
		// Committed sub-buffers still carry minable records: scan for
		// the last non-zero entry (paper §3.2) and mine from there.
		words := b.Words()
		last := -1
		for i, w := range words {
			if w != trace.Invalid && w != trace.Sentinel {
				last = i
			}
		}
		if last < 0 {
			t.Fatal("no data survived the kill")
		}
		recs := trace.MineBackward(words[:last+1])
		if len(recs) == 0 {
			t.Error("no records recoverable after kill -9")
		}
	}
	if !found {
		t.Fatal("no owned main buffer in post-mortem snap")
	}
}

func TestDAGRebasingOnConflict(t *testing.T) {
	modA := fig2()
	modA.Name = "a"
	modB := fig2()
	modB.Name = "b"
	ra := instr(t, modA, core.Options{})
	rb := instr(t, modB, core.Options{})
	p, rt, _ := newRT(t, Config{})
	lma, err := p.Load(ra.Module)
	if err != nil {
		t.Fatal(err)
	}
	lmb, err := p.Load(rb.Module)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Rebased() != 1 {
		t.Fatalf("rebased = %d, want 1 (both modules default to base 0)", rt.Rebased())
	}
	if lma.DAGBase == lmb.DAGBase {
		t.Error("conflicting modules share a DAG base")
	}
	// The probe stores in module b must carry the rebased IDs.
	for _, fx := range rb.Module.DAGFixups {
		w := uint32(p.Code[lmb.CodeBase+fx].Imm)
		id := trace.DAGID(w)
		if id < lmb.DAGBase || id >= lmb.DAGBase+rb.Module.DAGCount {
			t.Errorf("probe DAG ID %d outside rebased range [%d,%d)", id, lmb.DAGBase, lmb.DAGBase+rb.Module.DAGCount)
		}
	}
}

func TestDAGBaseFilePreAssignment(t *testing.T) {
	modA := fig2()
	modA.Name = "a"
	ra := instr(t, modA, core.Options{})
	p, rt, _ := newRT(t, Config{DAGBases: map[string]uint32{"a": 7000}})
	lm, err := p.Load(ra.Module)
	if err != nil {
		t.Fatal(err)
	}
	if lm.DAGBase != 7000 {
		t.Errorf("DAG base = %d, want 7000 from the base file", lm.DAGBase)
	}
	_ = rt
}

func TestReloadReusesRange(t *testing.T) {
	modA := fig2()
	modA.Name = "a"
	ra := instr(t, modA, core.Options{})
	modB := fig2()
	modB.Name = "b"
	rb := instr(t, modB, core.Options{})

	p, _, _ := newRT(t, Config{})
	lma, _ := p.Load(ra.Module)
	p.Load(rb.Module)
	firstBase := lma.DAGBase
	p.Unload(lma)
	lma2, err := p.Load(ra.Module)
	if err != nil {
		t.Fatal(err)
	}
	if lma2.DAGBase != firstBase {
		t.Errorf("reload base = %d, want %d (no ID-space leak)", lma2.DAGBase, firstBase)
	}
}

func TestBadDAGFallback(t *testing.T) {
	m := fig2()
	m.Name = "huge"
	res := instr(t, m, core.Options{})
	// Claim the module needs almost the whole ID space twice.
	res.Module.DAGCount = trace.MaxDAGID - 1
	p, rt, _ := newRT(t, Config{})
	p.Load(res.Module)
	m2 := fig2()
	m2.Name = "huge2"
	res2 := instr(t, m2, core.Options{})
	res2.Module.DAGCount = trace.MaxDAGID - 1
	p.Load(res2.Module)
	if rt.BadDAGs() != 1 {
		t.Fatalf("badDAGs = %d, want 1", rt.BadDAGs())
	}
	// The second module's probes all use the bad-DAG ID.
	lm := p.Modules[1]
	for _, fx := range res2.Module.DAGFixups {
		w := uint32(p.Code[lm.CodeBase+fx].Imm)
		if trace.DAGID(w) != trace.BadDAGID {
			t.Errorf("probe ID = %d, want bad-DAG", trace.DAGID(w))
		}
	}
}

func TestProbationOnly(t *testing.T) {
	// An uninstrumented module never pulls its thread off probation.
	m := &module.Module{
		Name: "plain",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 2, Exported: true}},
	}
	p, rt, _ := newRT(t, Config{NumBuffers: 2})
	p.Load(m) // not instrumented
	p.StartMain(0)
	vm.RunProcess(p, 10000)
	if len(rt.free) != 2 {
		t.Errorf("%d free buffers, want 2 (thread never left probation)", len(rt.free))
	}
}

func TestDesperationOverflow(t *testing.T) {
	// More instrumented threads than buffers: the extras share the
	// desperation buffer.
	code := []isa.Instr{
		// main: spawn 3 workers at "work", join all
		{Op: isa.MOVI, A: 8, Imm: 3},
		{Op: isa.LDFN, A: 1, Imm: 1}, // 1 loop head; entry of "work"
		{Op: isa.MOVI, A: 2, Imm: 0},
		{Op: isa.SYS, Imm: isa.SysThreadCreate},
		{Op: isa.MOV, A: 9, B: 0},
		{Op: isa.MOV, A: 1, B: 9},
		{Op: isa.SYS, Imm: isa.SysThreadJoin},
		{Op: isa.ADDI, A: 8, B: 8, Imm: -1},
		{Op: isa.BGT, A: 8, B: 0, Imm: 1},
		{Op: isa.MOVI, A: 1, Imm: 0},
		{Op: isa.SYS, Imm: isa.SysExit},
		{Op: isa.HLT},
		// work: count down from 50
		{Op: isa.MOVI, A: 5, Imm: 50}, // 12
		{Op: isa.ADDI, A: 5, B: 5, Imm: -1},
		{Op: isa.BGT, A: 5, B: 0, Imm: 13},
		{Op: isa.RET},
	}
	m := &module.Module{Name: "many", Code: code,
		Funcs: []module.Func{
			{Name: "main", Entry: 0, End: 12, Exported: true},
			{Name: "work", Entry: 12, End: 16},
		}}
	res := instr(t, m, core.Options{})
	// Main thread takes the only buffer; workers run sequentially
	// (join immediately) but buffers are released on thread exit and
	// reused, so to force desperation use a main thread that holds
	// its buffer plus a tiny pool.
	p, rt, _ := newRT(t, Config{NumBuffers: 1, BufferWords: 64})
	p.Load(res.Module)
	p.StartMain(0)
	vm.RunProcess(p, 1_000_000)
	if rt.Desperations() == 0 {
		t.Error("expected at least one thread in the desperation buffer")
	}
	if p.FatalSignal != 0 || p.ExitCode != 0 {
		t.Errorf("program failed: sig=%s exit=%d", vm.SignalName(p.FatalSignal), p.ExitCode)
	}
}

func TestPolicyParsing(t *testing.T) {
	src := `
# test policy
snap exception *
nosnap exception SIGFPE
snap api
snap hang
snap fatal
suppress 2
`
	pol, err := ParsePolicy(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !pol.API || !pol.Hang || !pol.Fatal || pol.MaxRepeat != 2 {
		t.Errorf("policy = %+v", pol)
	}
	if !pol.snapOnException(vm.SigSegv) {
		t.Error("SIGSEGV should snap")
	}
	if pol.snapOnException(vm.SigFpe) {
		t.Error("SIGFPE should be excluded")
	}
}

func TestPolicyParseErrors(t *testing.T) {
	for _, src := range []string{
		"snap bogus",
		"suppress x",
		"suppress 0",
		"frobnicate",
		"snap exception",
	} {
		if _, err := ParsePolicy(strings.NewReader(src)); err == nil {
			t.Errorf("policy %q accepted", src)
		}
	}
}

func TestSnapAPISyscall(t *testing.T) {
	data := []byte("checkpoint")
	m := &module.Module{
		Name: "api",
		Code: []isa.Instr{
			{Op: isa.GADDR, A: 1, Imm: 0},
			{Op: isa.MOVI, A: 2, Imm: int32(len(data))},
			{Op: isa.SYS, Imm: isa.SysSnap},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Data:  data,
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 5, Exported: true}},
	}
	res := instr(t, m, core.Options{})
	p, rt, _ := newRT(t, Config{Policy: DefaultPolicy()})
	p.Load(res.Module)
	p.StartMain(0)
	vm.RunProcess(p, 100000)
	if len(rt.Snaps()) != 1 {
		t.Fatalf("%d snaps", len(rt.Snaps()))
	}
	if got := rt.Snaps()[0].Reason; got != "api checkpoint" {
		t.Errorf("reason = %q", got)
	}
}

func TestSnapSerializationRoundTrip(t *testing.T) {
	res := instr(t, fig2(), core.Options{})
	p, rt, _ := newRT(t, Config{})
	p.Load(res.Module)
	p.StartMain(0)
	vm.RunProcess(p, 100000)
	s := rt.PostMortemSnap()
	var buf strings.Builder
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := snap.Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.RuntimeID != s.RuntimeID || len(got.Buffers) != len(s.Buffers) ||
		len(got.Modules) != len(s.Modules) {
		t.Error("snap did not round-trip")
	}
	mi, rel, ok := got.ModuleForDAG(1)
	if !ok || mi.Name != "fig2" || rel != 1 {
		t.Errorf("ModuleForDAG(1) = %+v, %d, %v", mi, rel, ok)
	}
}
