package replay

import (
	"bytes"
	"fmt"
	"sort"

	"traceback/internal/module"
	"traceback/internal/mvm"
	"traceback/internal/scenario"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
	"traceback/internal/workload"
)

// Result is one replayed (or recorded) run's harvest.
type Result struct {
	Snaps []*snap.Snap
	Maps  []*module.MapFile
	// Divergence is non-nil when the replay stopped conforming to the
	// log (strict mode) or failed byte-identity (Verify).
	Divergence *Divergence
	// Identical is set by Verify when every replayed snap matched the
	// original byte for byte.
	Identical bool
}

// WrapOptions returns the tiny-buffer runtime configuration the
// fault campaign's wrap kind runs under; recordings with Wrap set
// replay with the same config.
func WrapOptions() scenario.Options {
	return scenario.Options{Config: &tbrt.Config{BufferWords: 128, SubBuffers: 4, Policy: tbrt.DefaultPolicy()}}
}

func options(l *Log) scenario.Options {
	if l.Wrap {
		return WrapOptions()
	}
	return scenario.Options{}
}

func buildScenario(name string, opts scenario.Options) (*scenario.Setup, error) {
	for _, b := range scenario.Builders {
		if b.Name == name {
			return b.Build(opts)
		}
	}
	return nil, fmt.Errorf("replay: unknown scenario %q", name)
}

func sortedRoles(procs map[string]*vm.Process) []string {
	roles := make([]string, 0, len(procs))
	for r := range procs {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	return roles
}

// HarvestTrial collects a run's snaps exactly as the fault campaign
// does after a trial: the service heartbeat first (hang detection),
// then per sorted role the policy snaps plus a post-mortem pull.
// Replay and campaign share this function so a replayed trial's
// harvest is positionally comparable to the original's.
func HarvestTrial(setup *scenario.Setup) []*snap.Snap {
	roles := sortedRoles(setup.Procs)
	if setup.Service != nil && len(roles) > 0 {
		m := setup.Procs[roles[0]].Machine
		m.SetClock(m.Clock() + 200_000)
		setup.Service.CheckStatus()
	}
	var snaps []*snap.Snap
	for _, role := range roles {
		rt := setup.Runtimes[role]
		snaps = append(snaps, rt.Snaps()...)
		if pm := rt.PostMortemSnap(); pm != nil {
			snaps = append(snaps, pm)
		}
	}
	return snaps
}

// harvest collects per the log's provenance: trial-style or the
// scenario's own Collect path.
func harvest(l *Log, setup *scenario.Setup) ([]*snap.Snap, error) {
	if l.Trial {
		return HarvestTrial(setup), nil
	}
	b, err := setup.Collect()
	if err != nil {
		return nil, err
	}
	return b.Snaps, nil
}

// Record runs a scenario with recording on and returns the log plus
// the harvest (whose snaps do NOT carry the section — call
// Log.Attach for that). Provenance mirrors the arguments.
func Record(name string, wrap, trial bool) (*Log, *Result, error) {
	setup, err := buildScenario(name, options(&Log{Wrap: wrap}))
	if err != nil {
		return nil, nil, err
	}
	rec := NewRecorder(0)
	setup.World.SetRecorder(rec)
	setup.Run(0)
	l := rec.Log(name, wrap, trial)
	snaps, err := harvest(l, setup)
	if err != nil {
		return nil, nil, err
	}
	return l, &Result{Snaps: snaps, Maps: setup.Maps}, nil
}

// Run replays the log strictly: the world is rebuilt from the log's
// provenance, the Driver is the sole nondeterminism source, and every
// re-observed decision is checked. A non-nil Result.Divergence means
// the replay stopped conforming; err is reserved for environmental
// failures (the scenario cannot even be built).
func Run(l *Log) (*Result, error) {
	return runWith(l, true)
}

func runWith(l *Log, strict bool) (*Result, error) {
	if l.Scenario == ManagedScenario {
		return runManaged(l, strict)
	}
	setup, err := buildScenario(l.Scenario, options(l))
	if err != nil {
		return nil, err
	}
	d := NewDriver(l, strict)
	setup.World.SetInjector(d)
	if strict {
		setup.World.SetRecorder(d)
	}
	setup.Run(0)
	snaps, herr := harvest(l, setup)
	d.Finish()
	if herr != nil {
		// A diverged or perturbed replay may legitimately produce no
		// snaps (e.g. a deadlock that never deadlocked); report that
		// outcome, not the harvest error.
		if dv := d.Divergence(); dv != nil || !strict {
			return &Result{Maps: setup.Maps, Divergence: dv}, nil
		}
		return nil, herr
	}
	return &Result{Snaps: snaps, Maps: setup.Maps, Divergence: d.Divergence()}, nil
}

// PetShop workload parameters, shared by the fault campaign's managed
// trials and managed replay so both build the identical world.
const (
	PetShopWorkers  = 2
	PetShopRequests = 40
	petShopSeed     = 88
)

// BuildPetShop builds the managed-runtime PetShop world: an
// instrumented module on a fresh single-machine world, with
// PetShopWorkers worker threads started and nothing executed.
func BuildPetShop() (*mvm.VM, []*mvm.MThread, *module.MapFile, error) {
	mod := workload.PetShopModule()
	im, mf, err := mvm.Instrument(mod, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	world := vm.NewWorld(petShopSeed)
	mach := world.NewMachine("petshop-host", 0)
	v := mvm.New(mach, nil, "petshop", mvm.RuntimeConfig{SnapOnUncaught: true})
	if _, err := v.Load(im); err != nil {
		return nil, nil, nil, err
	}
	var threads []*mvm.MThread
	for i := 0; i < PetShopWorkers; i++ {
		th, err := v.Start("worker", int64(PetShopRequests))
		if err != nil {
			return nil, nil, nil, err
		}
		threads = append(threads, th)
	}
	return v, threads, mf, nil
}

// PetShopDone reports all worker threads finished.
func PetShopDone(threads []*mvm.MThread) func() bool {
	return func() bool {
		for _, th := range threads {
			if th.State != mvm.MDone {
				return false
			}
		}
		return true
	}
}

func runManaged(l *Log, strict bool) (*Result, error) {
	v, threads, mf, err := BuildPetShop()
	if err != nil {
		return nil, err
	}
	d := NewDriver(l, strict)
	v.OnQuantum = d.ManagedOnQuantum
	v.Run(1<<30, PetShopDone(threads))
	d.Finish()
	return &Result{
		Snaps:      v.Runtime().Snaps(),
		Maps:       []*module.MapFile{mf},
		Divergence: d.Divergence(),
	}, nil
}

// Verify replays l strictly and asserts the replayed harvest is
// byte-identical (nondet sections excluded) to the original snaps,
// positionally. Any mismatch lands in Result.Divergence; Identical is
// set only on a full match with zero divergence.
func Verify(l *Log, originals []*snap.Snap) (*Result, error) {
	res, err := Run(l)
	if err != nil {
		return nil, err
	}
	if res.Divergence != nil {
		return res, nil
	}
	if len(res.Snaps) != len(originals) {
		res.Divergence = &Divergence{
			Kind: "harvest-mismatch",
			Want: fmt.Sprintf("%d snaps", len(originals)),
			Got:  fmt.Sprintf("%d snaps", len(res.Snaps)),
		}
		return res, nil
	}
	for i := range originals {
		want, err := StrippedBytes(originals[i])
		if err != nil {
			return nil, err
		}
		got, err := StrippedBytes(res.Snaps[i])
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(want, got) {
			res.Divergence = &Divergence{
				Seq:  i,
				Kind: "snap-mismatch",
				Want: fmt.Sprintf("%s/%s %d bytes", originals[i].Process, originals[i].Reason, len(want)),
				Got:  fmt.Sprintf("%s/%s %d bytes", res.Snaps[i].Process, res.Snaps[i].Reason, len(got)),
			}
			return res, nil
		}
	}
	res.Identical = true
	return res, nil
}
