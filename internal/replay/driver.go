package replay

import (
	"encoding/json"
	"fmt"
	"sort"

	"traceback/internal/mvm"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// Divergence is the first point where a replay stopped matching its
// log — a first-class, machine-readable error. Error() renders it as
// a single line with an embedded JSON object so harnesses can parse
// it out of any error chain.
type Divergence struct {
	// Seq is the event index in the log (or the snap index for
	// snap-mismatch / the harvest position for harvest-mismatch).
	Seq int `json:"seq"`
	// Quantum is the world quantum at detection (0 when not
	// applicable).
	Quantum uint64 `json:"quantum,omitempty"`
	// Kind classifies the mismatch: event-mismatch (an observed
	// decision differs from the recorded one), log-exhausted (the
	// replay observed more decisions than were recorded),
	// log-unconsumed (recorded decisions never happened),
	// fire-failed (a recorded perturbation could not be re-applied),
	// harvest-mismatch (snap counts differ), snap-mismatch (a
	// replayed snap is not byte-identical to the original).
	Kind string `json:"kind"`
	Want string `json:"want,omitempty"`
	Got  string `json:"got,omitempty"`
}

func (d *Divergence) Error() string {
	b, err := json.Marshal(d)
	if err != nil {
		return "replay: divergence: " + d.Kind
	}
	return "replay: divergence: " + string(b)
}

// Driver replays a log against a freshly built world. It implements
// BOTH sides of the VM's nondeterminism surface:
//
//   - as the vm.Injector it is the sole perturbation source,
//     re-firing the log's signals, kills, unloads, and RPC transport
//     verdicts when the world reaches their recorded quanta/ordinals;
//   - as the vm.Recorder (strict mode) it re-observes every decision
//     through the same Recorder logic the original run used and
//     compares the streams position by position. The driver's own
//     fires come back to it through the VM's recorder hooks, so even
//     the replayed perturbations are conformance-checked.
//
// The first mismatch latches a Divergence; after that the driver
// stops firing and observing (the run is allowed to wind down under
// its step budget) and Finish reports the latched state.
type Driver struct {
	log    *Log
	strict bool
	rec    *Recorder

	checked int // prefix of rec.events already compared
	fires   []trace.NondetRecord
	fireIdx int
	rpc     map[rpcKey]trace.NondetRecord
	reqs    uint32
	reps    uint32
	mq      uint64 // managed quanta seen
	div     *Divergence
}

type rpcKey struct {
	reply bool
	index uint32
}

// NewDriver builds a driver for l. strict enables conformance
// checking (replay verification); non-strict replays the log's
// perturbations without checking, which is what replay-under-
// perturbation wants (a mutated log is SUPPOSED to diverge).
func NewDriver(l *Log, strict bool) *Driver {
	d := &Driver{
		log:    l,
		strict: strict,
		rec:    NewRecorder(l.Interval),
		rpc:    map[rpcKey]trace.NondetRecord{},
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case trace.NDSignal, trace.NDKill, trace.NDUnload, trace.NDManaged:
			d.fires = append(d.fires, ev)
		case trace.NDRPCFault:
			d.rpc[rpcKey{ev.Flags&trace.NDFReply != 0, ev.Index}] = ev
		}
	}
	// Keep fires quantum-ordered even if a mutated log unsorted them.
	sort.SliceStable(d.fires, func(i, j int) bool { return d.fires[i].Quantum < d.fires[j].Quantum })
	return d
}

// Divergence returns the latched divergence (nil while conforming).
func (d *Driver) Divergence() *Divergence { return d.div }

func (d *Driver) setDiv(dv *Divergence) {
	if d.div == nil {
		d.div = dv
	}
}

// drain compares newly observed events against the log.
func (d *Driver) drain() {
	evs := d.rec.events
	for d.checked < len(evs) {
		got := evs[d.checked]
		if d.checked >= len(d.log.Events) {
			d.setDiv(&Divergence{Seq: d.checked, Quantum: got.Quantum, Kind: "log-exhausted", Got: got.String()})
			return
		}
		want := d.log.Events[d.checked]
		if got != want {
			d.setDiv(&Divergence{Seq: d.checked, Quantum: got.Quantum, Kind: "event-mismatch", Want: want.String(), Got: got.String()})
			return
		}
		d.checked++
	}
}

// Finish performs end-of-run accounting: a conforming replay must
// have consumed the whole log.
func (d *Driver) Finish() {
	if d.div != nil {
		return
	}
	if d.strict && d.checked < len(d.log.Events) {
		want := d.log.Events[d.checked]
		d.setDiv(&Divergence{Seq: d.checked, Quantum: want.Quantum, Kind: "log-unconsumed", Want: want.String()})
		return
	}
	if d.fireIdx < len(d.fires) {
		want := d.fires[d.fireIdx]
		d.setDiv(&Divergence{Seq: d.fireIdx, Quantum: want.Quantum, Kind: "log-unconsumed", Want: want.String()})
	}
}

// AtQuantum implements vm.Injector: re-fire every recorded
// perturbation whose quantum has been reached.
func (d *Driver) AtQuantum(m *vm.Machine) {
	if d.div != nil {
		return
	}
	w := m.World
	for d.fireIdx < len(d.fires) && d.fires[d.fireIdx].Kind != trace.NDManaged &&
		d.fires[d.fireIdx].Quantum <= w.Quantum() && d.div == nil {
		ev := d.fires[d.fireIdx]
		d.fireIdx++
		d.fire(w, ev)
	}
}

func (d *Driver) fire(w *vm.World, ev trace.NondetRecord) {
	fail := func(why string) {
		d.setDiv(&Divergence{Quantum: w.Quantum(), Kind: "fire-failed", Want: ev.String(), Got: why})
	}
	if int(ev.Machine) >= len(w.Machines) {
		fail(fmt.Sprintf("no machine %d", ev.Machine))
		return
	}
	m := w.Machines[ev.Machine]
	var p *vm.Process
	for _, pp := range m.Procs() {
		if pp.PID == int(ev.PID) {
			p = pp
			break
		}
	}
	if p == nil {
		fail(fmt.Sprintf("no pid %d on machine %d", ev.PID, ev.Machine))
		return
	}
	switch ev.Kind {
	case trace.NDKill:
		if p.Exited {
			fail("process already exited")
			return
		}
		m.KillProcess(p)
	case trace.NDSignal:
		t := p.Threads[int(ev.TID)]
		if t == nil {
			fail(fmt.Sprintf("no tid %d", ev.TID))
			return
		}
		if !m.InjectSignal(t, int(ev.Sig)) {
			fail("signal not deliverable")
		}
	case trace.NDUnload:
		for _, lm := range p.Modules {
			if lm.Handle == int(ev.Index) {
				if lm.Unloaded {
					fail("module already unloaded")
					return
				}
				p.Unload(lm)
				return
			}
		}
		fail(fmt.Sprintf("no module handle %d", ev.Index))
	}
}

// AtRPC implements vm.Injector: return the recorded transport verdict
// for this message ordinal (the zero fault when none was recorded).
func (d *Driver) AtRPC(from *vm.Thread, endpoint uint64, reply bool) vm.RPCFault {
	var idx uint32
	if reply {
		d.reps++
		idx = d.reps
	} else {
		d.reqs++
		idx = d.reqs
	}
	if d.div != nil {
		return vm.RPCFault{}
	}
	ev, ok := d.rpc[rpcKey{reply, idx}]
	if !ok {
		return vm.RPCFault{}
	}
	return vm.RPCFault{
		Drop:      ev.Flags&trace.NDFDrop != 0,
		Delay:     ev.Delay,
		Duplicate: ev.Flags&trace.NDFDup != 0,
	}
}

// The vm.Recorder side (strict mode only — Run installs it only
// then): delegate to the embedded Recorder, then compare.

func (d *Driver) RecordQuantum(m *vm.Machine, t *vm.Thread) {
	if d.div != nil {
		return
	}
	d.rec.RecordQuantum(m, t)
	d.drain()
}

func (d *Driver) RecordSignal(m *vm.Machine, t *vm.Thread, sig int, prePC uint64) {
	if d.div != nil {
		return
	}
	d.rec.RecordSignal(m, t, sig, prePC)
	d.drain()
}

func (d *Driver) RecordKill(m *vm.Machine, p *vm.Process) {
	if d.div != nil {
		return
	}
	d.rec.RecordKill(m, p)
	d.drain()
}

func (d *Driver) RecordUnload(p *vm.Process, lm *vm.LoadedModule) {
	if d.div != nil {
		return
	}
	d.rec.RecordUnload(p, lm)
	d.drain()
}

func (d *Driver) RecordRPCFault(from *vm.Thread, endpoint uint64, reply bool, f vm.RPCFault) {
	if d.div != nil {
		return
	}
	d.rec.RecordRPCFault(from, endpoint, reply, f)
	d.drain()
}

func (d *Driver) RecordRPCDeliver(to *vm.Thread, endpoint uint64, from *vm.Thread, payloadLen int) {
	if d.div != nil {
		return
	}
	d.rec.RecordRPCDeliver(to, endpoint, from, payloadLen)
	d.drain()
}

// ManagedOnQuantum is the managed-runtime replay hook: install as
// mvm's OnQuantum. It mirrors the recording side's quantum counting,
// checkpoints (strict mode), and re-fires recorded interrupts.
func (d *Driver) ManagedOnQuantum(v *mvm.VM) {
	d.mq++
	if d.strict && d.div == nil {
		d.rec.ManagedQuantum(d.mq, v.Machine)
		d.drain()
	}
	for d.fireIdx < len(d.fires) && d.fires[d.fireIdx].Quantum <= d.mq && d.div == nil {
		ev := d.fires[d.fireIdx]
		d.fireIdx++
		if ev.Kind != trace.NDManaged {
			d.setDiv(&Divergence{Quantum: d.mq, Kind: "fire-failed", Want: ev.String(), Got: "native event in managed replay"})
			return
		}
		v.Interrupt(int(ev.TID), int(ev.Sig))
		if d.strict {
			d.rec.ManagedInterrupt(d.mq, int(ev.TID), int(ev.Sig))
			d.drain()
		}
	}
}

var (
	_ vm.Injector = (*Driver)(nil)
	_ vm.Recorder = (*Driver)(nil)
)
