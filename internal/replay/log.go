// Package replay re-executes a snapped run from its recorded
// nondeterminism log — the record-and-replay line (rr, iReplayer)
// grafted onto TraceBack's deterministic VM. Recording captures every
// decision the VM makes that is not a pure function of the initial
// world state (scheduling checkpoints, asynchronous signals, kills,
// unloads, RPC transport verdicts and delivery order); replay
// rebuilds the same world, installs a Driver that re-fires the
// logged perturbations as the SOLE nondeterminism source, and checks
// every re-observed decision against the log. The run either
// reproduces the original byte for byte (Verify) or stops with a
// machine-readable Divergence — there is no silent middle ground.
package replay

import (
	"bytes"
	"fmt"

	"traceback/internal/snap"
	"traceback/internal/trace"
)

// DefaultInterval is the quantum-checkpoint period: one NDQuantum
// record per this many scheduling quanta. Smaller catches divergence
// earlier; larger shrinks the log. 64 matches the VM's instruction
// slice — roughly one checkpoint per 4096 instructions.
const DefaultInterval = 64

// ManagedScenario is the scenario name recorded for managed-runtime
// (mvm PetShop) trials, which replay through the managed path rather
// than a scenario.Builders entry.
const ManagedScenario = "petshop"

// Log is a decoded nondeterminism recording plus the provenance
// needed to rebuild the world it came from.
type Log struct {
	// Scenario names the world builder (a scenario.Builders name, or
	// ManagedScenario for the managed runtime).
	Scenario string
	// Wrap marks a tiny-buffer (wrap-stress) runtime config; Trial a
	// fault-campaign-style harvest (see HarvestTrial).
	Wrap  bool
	Trial bool
	// Interval is the checkpoint period the recording used.
	Interval uint64
	// Events is the recorded stream, in observation order.
	Events []trace.NondetRecord
}

// Section encodes the log as the optional snap section.
func (l *Log) Section() *snap.NondetLog {
	sec := &snap.NondetLog{
		V:        1,
		Scenario: l.Scenario,
		Wrap:     l.Wrap,
		Trial:    l.Trial,
		Interval: l.Interval,
	}
	sec.SetWords(trace.EncodeNondet(l.Events))
	return sec
}

// Attach embeds the log into every snap of a harvest, so each one is
// independently replayable.
func (l *Log) Attach(snaps []*snap.Snap) {
	sec := l.Section()
	for _, s := range snaps {
		s.Nondet = sec
	}
}

// FromSnap decodes the recording embedded in s. Snaps written before
// the section existed (or harvested with recording off) have none.
func FromSnap(s *snap.Snap) (*Log, error) {
	if s.Nondet == nil {
		return nil, fmt.Errorf("replay: snap %s/%s carries no recording", s.Process, s.Reason)
	}
	return FromSection(s.Nondet)
}

// FromSection decodes a snap's nondet section.
func FromSection(sec *snap.NondetLog) (*Log, error) {
	if sec.V != 1 {
		return nil, fmt.Errorf("replay: unknown recording version %d", sec.V)
	}
	events, err := trace.DecodeNondet(sec.Words())
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	interval := sec.Interval
	if interval == 0 {
		interval = DefaultInterval
	}
	return &Log{
		Scenario: sec.Scenario,
		Wrap:     sec.Wrap,
		Trial:    sec.Trial,
		Interval: interval,
		Events:   events,
	}, nil
}

// StrippedBytes serializes a snap with its nondet section removed —
// the byte-identity currency of replay verification. The recording is
// provenance about the run, not state of it; a replayed run's OWN
// recording is checked by strict log conformance instead, so the
// section is excluded from the byte comparison.
func StrippedBytes(s *snap.Snap) ([]byte, error) {
	c := *s
	c.Nondet = nil
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
