package replay

import (
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// Recorder is the standard vm.Recorder: it appends one NondetRecord
// per observed decision, stamping each with the world-global quantum
// counter (the alignment backbone replay fires against). It also
// serves the managed runtime, whose quanta are counted by the mvm
// Run loop rather than vm.Machine.Step.
//
// The replaying Driver embeds a Recorder and re-uses exactly this
// observation logic, which is what makes record and replay agree on
// field-for-field record contents by construction.
type Recorder struct {
	// Interval is the NDQuantum checkpoint period (0: DefaultInterval).
	Interval uint64

	events []trace.NondetRecord
	quanta uint64 // RecordQuantum calls (native path)
	mq     uint64 // ManagedQuantum calls (managed path)
	reqs   uint32 // RPC request-side consults
	reps   uint32 // RPC reply-side consults
}

// NewRecorder returns a recorder with the given checkpoint interval
// (0 for DefaultInterval).
func NewRecorder(interval uint64) *Recorder {
	if interval == 0 {
		interval = DefaultInterval
	}
	return &Recorder{Interval: interval}
}

// Events returns the recorded stream (live slice; do not mutate).
func (r *Recorder) Events() []trace.NondetRecord { return r.events }

// Log packages the recording with its provenance.
func (r *Recorder) Log(scenario string, wrap, trial bool) *Log {
	return &Log{
		Scenario: scenario,
		Wrap:     wrap,
		Trial:    trial,
		Interval: r.Interval,
		Events:   r.events,
	}
}

func machIdx(m *vm.Machine) uint16 {
	if m.World == nil {
		return 0
	}
	if i := m.World.MachineIndex(m); i >= 0 {
		return uint16(i)
	}
	return 0
}

// RecordQuantum implements vm.Recorder: every Interval-th chosen
// quantum becomes an NDQuantum checkpoint.
func (r *Recorder) RecordQuantum(m *vm.Machine, t *vm.Thread) {
	r.quanta++
	if (r.quanta-1)%r.Interval != 0 {
		return
	}
	r.events = append(r.events, trace.NondetRecord{
		Kind:    trace.NDQuantum,
		Quantum: m.World.Quantum(),
		Machine: machIdx(m),
		PID:     uint32(t.Proc.PID),
		TID:     uint32(t.TID),
		Clock:   m.Clock(),
	})
}

// RecordSignal implements vm.Recorder.
func (r *Recorder) RecordSignal(m *vm.Machine, t *vm.Thread, sig int, prePC uint64) {
	r.events = append(r.events, trace.NondetRecord{
		Kind:    trace.NDSignal,
		Quantum: m.World.Quantum(),
		Machine: machIdx(m),
		PID:     uint32(t.Proc.PID),
		TID:     uint32(t.TID),
		Sig:     int32(sig),
		PC:      prePC,
		Clock:   m.Clock(),
	})
}

// RecordKill implements vm.Recorder.
func (r *Recorder) RecordKill(m *vm.Machine, p *vm.Process) {
	r.events = append(r.events, trace.NondetRecord{
		Kind:    trace.NDKill,
		Quantum: m.World.Quantum(),
		Machine: machIdx(m),
		PID:     uint32(p.PID),
		Clock:   m.Clock(),
	})
}

// RecordUnload implements vm.Recorder; Index carries the module
// handle, which is stable across a deterministic rebuild.
func (r *Recorder) RecordUnload(p *vm.Process, lm *vm.LoadedModule) {
	m := p.Machine
	r.events = append(r.events, trace.NondetRecord{
		Kind:    trace.NDUnload,
		Quantum: m.World.Quantum(),
		Machine: machIdx(m),
		PID:     uint32(p.PID),
		Index:   uint32(lm.Handle),
		Clock:   m.Clock(),
	})
}

// RecordRPCFault implements vm.Recorder. Every consult advances the
// side's ordinal — that is how a replaying injector addresses the
// same message — but only non-zero verdicts are logged.
func (r *Recorder) RecordRPCFault(from *vm.Thread, endpoint uint64, reply bool, f vm.RPCFault) {
	var idx uint32
	var flags uint32
	if reply {
		r.reps++
		idx = r.reps
		flags |= trace.NDFReply
	} else {
		r.reqs++
		idx = r.reqs
	}
	if !f.Drop && f.Delay == 0 && !f.Duplicate {
		return
	}
	if f.Drop {
		flags |= trace.NDFDrop
	}
	if f.Duplicate {
		flags |= trace.NDFDup
	}
	m := from.Proc.Machine
	r.events = append(r.events, trace.NondetRecord{
		Kind:     trace.NDRPCFault,
		Quantum:  m.World.Quantum(),
		Machine:  machIdx(m),
		PID:      uint32(from.Proc.PID),
		TID:      uint32(from.TID),
		Endpoint: endpoint,
		Index:    idx,
		Flags:    flags,
		Delay:    f.Delay,
	})
}

// RecordRPCDeliver implements vm.Recorder.
func (r *Recorder) RecordRPCDeliver(to *vm.Thread, endpoint uint64, from *vm.Thread, payloadLen int) {
	m := to.Proc.Machine
	r.events = append(r.events, trace.NondetRecord{
		Kind:     trace.NDRPCDeliver,
		Quantum:  m.World.Quantum(),
		Machine:  machIdx(m),
		PID:      uint32(to.Proc.PID),
		TID:      uint32(to.TID),
		PID2:     uint32(from.Proc.PID),
		TID2:     uint32(from.TID),
		Endpoint: endpoint,
		Len:      uint32(payloadLen),
		Clock:    m.Clock(),
	})
}

// ManagedQuantum is the managed-runtime analog of RecordQuantum: call
// it from mvm's OnQuantum with the managed quantum count q.
func (r *Recorder) ManagedQuantum(q uint64, m *vm.Machine) {
	r.mq++
	if (r.mq-1)%r.Interval != 0 {
		return
	}
	r.events = append(r.events, trace.NondetRecord{
		Kind:    trace.NDQuantum,
		Quantum: q,
		Clock:   m.Clock(),
	})
}

// ManagedInterrupt records an asynchronous managed interrupt
// (mvm.VM.Interrupt) fired at managed quantum q.
func (r *Recorder) ManagedInterrupt(q uint64, tid, code int) {
	r.events = append(r.events, trace.NondetRecord{
		Kind:    trace.NDManaged,
		Quantum: q,
		TID:     uint32(tid),
		Sig:     int32(code),
	})
}

var _ vm.Recorder = (*Recorder)(nil)
