package replay

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"traceback/internal/mvm"
	"traceback/internal/scenario"
	"traceback/internal/snap"
	"traceback/internal/trace"
)

func loadSnap(b []byte) (*snap.Snap, error) {
	return snap.Load(bytes.NewReader(b))
}

// managedRecordHook is the recording OnQuantum the fault campaign's
// managed trials install: count quanta, checkpoint, fire the
// interrupt once at quantum `at`, and record the fire.
func managedRecordHook(rec *Recorder, q *uint64, fired *bool, at uint64, victim int) func(*mvm.VM) {
	return func(v *mvm.VM) {
		*q++
		rec.ManagedQuantum(*q, v.Machine)
		if !*fired && *q >= at {
			*fired = true
			v.Interrupt(victim, mvm.ExcInterrupted)
			rec.ManagedInterrupt(*q, victim, mvm.ExcInterrupted)
		}
	}
}

// TestRecordReplayScenarios is the core guarantee: every example
// scenario, recorded and replayed, reconstructs its snaps byte for
// byte with zero divergence and full log consumption.
func TestRecordReplayScenarios(t *testing.T) {
	for _, b := range scenario.Builders {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			l, res, err := Record(b.Name, false, false)
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			if len(l.Events) == 0 {
				t.Fatalf("empty recording")
			}
			v, err := Verify(l, res.Snaps)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if v.Divergence != nil {
				t.Fatalf("diverged: %v", v.Divergence)
			}
			if !v.Identical {
				t.Fatalf("replay not byte-identical")
			}
		})
	}
}

// TestRecordingParity proves recording-off runs are untouched and
// recording-on runs are cycle-identical: same final clock, same
// process cycles, same snap bytes. This is the Table 1 parity
// argument — the recorder only observes, never perturbs.
func TestRecordingParity(t *testing.T) {
	run := func(record bool) (uint64, uint64, [][]byte) {
		setup, err := scenario.BuildQuickstart(scenario.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if record {
			setup.World.SetRecorder(NewRecorder(0))
		}
		setup.Run(0)
		b, err := setup.Collect()
		if err != nil {
			t.Fatal(err)
		}
		var clock, cycles uint64
		for _, p := range setup.Procs {
			clock = p.Machine.Clock()
			cycles += p.Cycles
		}
		var raw [][]byte
		for _, s := range b.Snaps {
			sb, err := StrippedBytes(s)
			if err != nil {
				t.Fatal(err)
			}
			raw = append(raw, sb)
		}
		return clock, cycles, raw
	}
	offClock, offCycles, offSnaps := run(false)
	onClock, onCycles, onSnaps := run(true)
	if offClock != onClock {
		t.Errorf("clock changed with recording on: %d vs %d", offClock, onClock)
	}
	if offCycles != onCycles {
		t.Errorf("cycles changed with recording on: %d vs %d", offCycles, onCycles)
	}
	if len(offSnaps) != len(onSnaps) {
		t.Fatalf("snap count changed: %d vs %d", len(offSnaps), len(onSnaps))
	}
	for i := range offSnaps {
		if !bytes.Equal(offSnaps[i], onSnaps[i]) {
			t.Errorf("snap %d bytes changed with recording on", i)
		}
	}
}

// TestDivergenceDetected seeds two corrupt logs and asserts both are
// rejected with machine-readable divergence reports.
func TestDivergenceDetected(t *testing.T) {
	l, _, err := Record("quickstart", false, false)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("event-mismatch", func(t *testing.T) {
		bad := &Log{Scenario: l.Scenario, Interval: l.Interval}
		bad.Events = append([]trace.NondetRecord(nil), l.Events...)
		ck := -1
		for i, ev := range bad.Events {
			if ev.Kind == trace.NDQuantum {
				ck = i
				break
			}
		}
		if ck < 0 {
			t.Fatal("no checkpoint in recording")
		}
		bad.Events[ck].Clock++
		res, err := Run(bad)
		if err != nil {
			t.Fatal(err)
		}
		if res.Divergence == nil {
			t.Fatal("corrupted checkpoint not detected")
		}
		if res.Divergence.Kind != "event-mismatch" {
			t.Fatalf("kind = %q, want event-mismatch", res.Divergence.Kind)
		}
		// Machine-readable: the error message embeds a JSON object.
		msg := res.Divergence.Error()
		i := strings.Index(msg, "{")
		if i < 0 {
			t.Fatalf("no JSON in %q", msg)
		}
		var parsed Divergence
		if err := json.Unmarshal([]byte(msg[i:]), &parsed); err != nil {
			t.Fatalf("unparseable divergence %q: %v", msg, err)
		}
		if parsed.Kind != "event-mismatch" {
			t.Fatalf("parsed kind = %q", parsed.Kind)
		}
	})

	t.Run("log-exhausted", func(t *testing.T) {
		bad := &Log{Scenario: l.Scenario, Interval: l.Interval}
		if len(l.Events) < 2 {
			t.Skip("recording too short")
		}
		bad.Events = append([]trace.NondetRecord(nil), l.Events[:len(l.Events)-1]...)
		res, err := Run(bad)
		if err != nil {
			t.Fatal(err)
		}
		if res.Divergence == nil || res.Divergence.Kind != "log-exhausted" {
			t.Fatalf("divergence = %v, want log-exhausted", res.Divergence)
		}
	})
}

// TestSectionRoundtrip pushes a log through the snap section and back.
func TestSectionRoundtrip(t *testing.T) {
	l, res, err := Record("quickstart", false, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Attach(res.Snaps)
	var buf bytes.Buffer
	if err := res.Snaps[0].Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := loadSnap(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := FromSnap(s2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Scenario != l.Scenario || l2.Interval != l.Interval || len(l2.Events) != len(l.Events) {
		t.Fatalf("provenance lost: %+v", l2)
	}
	for i := range l.Events {
		if l.Events[i] != l2.Events[i] {
			t.Fatalf("event %d changed across the section", i)
		}
	}
	// And the replay from the embedded section verifies too.
	v, err := Verify(l2, res.Snaps)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Identical || v.Divergence != nil {
		t.Fatalf("replay from section failed: %v", v.Divergence)
	}
}

// TestPerturb replays a clean recording under one seeded variation;
// the variation must be applied (non-empty description) and the run
// must complete without environmental error.
func TestPerturb(t *testing.T) {
	l, _, err := Record("quickstart", false, false)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Perturb(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Mutation == "" || strings.HasPrefix(pr.Mutation, "no-op") {
		t.Fatalf("no mutation applied: %q", pr.Mutation)
	}
	if pr.Result == nil {
		t.Fatal("no result")
	}
}

// TestManagedRecordReplay mirrors the fault campaign's managed trial:
// record a PetShop run with an interrupt, then verify its replay.
func TestManagedRecordReplay(t *testing.T) {
	v, threads, _, err := BuildPetShop()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(0)
	var q uint64
	fired := false
	v.OnQuantum = managedRecordHook(rec, &q, &fired, 40, 1)
	v.Run(1<<30, PetShopDone(threads))
	snaps := v.Runtime().Snaps()
	if len(snaps) == 0 {
		t.Fatal("managed trial produced no snap")
	}
	l := rec.Log(ManagedScenario, false, true)
	if !fired {
		t.Fatal("interrupt never fired")
	}
	res, err := Verify(l, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	if !res.Identical {
		t.Fatal("managed replay not byte-identical")
	}
}
