package replay

import (
	"fmt"
	"math/rand"

	"traceback/internal/trace"
	"traceback/internal/vm"
)

// PerturbResult is one replay-under-perturbation run: the original
// log re-executed with exactly one seeded variation (iReplayer's
// in-situ evaluation). The run is non-strict — a perturbed log is
// SUPPOSED to diverge from the recording — and the harvest shows what
// the execution became under the variation.
type PerturbResult struct {
	// Mutation describes the applied variation.
	Mutation string
	Result   *Result
}

// Perturb replays l with one deterministic seeded mutation.
func Perturb(l *Log, seed int64) (*PerturbResult, error) {
	rng := rand.New(rand.NewSource(seed))
	ml, desc := mutate(l, rng)
	res, err := runWith(ml, false)
	if err != nil {
		return nil, err
	}
	return &PerturbResult{Mutation: desc, Result: res}, nil
}

// mutate clones l with one variation applied. Logs that carry
// perturbation events get one of them shifted, dropped, or hardened;
// clean recordings get a fresh signal injected at a recorded
// checkpoint — every log has at least one meaningful variation.
func mutate(l *Log, rng *rand.Rand) (*Log, string) {
	out := &Log{Scenario: l.Scenario, Wrap: l.Wrap, Trial: l.Trial, Interval: l.Interval}
	out.Events = append([]trace.NondetRecord(nil), l.Events...)

	var cands []int
	for i, ev := range out.Events {
		switch ev.Kind {
		case trace.NDSignal, trace.NDKill, trace.NDUnload, trace.NDRPCFault, trace.NDManaged:
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		// Clean recording: inject a signal at a random checkpoint (the
		// checkpoint pins a live thread to target).
		var ckpts []trace.NondetRecord
		for _, ev := range out.Events {
			if ev.Kind == trace.NDQuantum && ev.PID != 0 {
				ckpts = append(ckpts, ev)
			}
		}
		if len(ckpts) == 0 {
			return out, "no-op (empty recording)"
		}
		ck := ckpts[rng.Intn(len(ckpts))]
		out.Events = append(out.Events, trace.NondetRecord{
			Kind:    trace.NDSignal,
			Quantum: ck.Quantum,
			Machine: ck.Machine,
			PID:     ck.PID,
			TID:     ck.TID,
			Sig:     int32(vm.SigApp),
		})
		return out, fmt.Sprintf("inject SIGAPP at q=%d pid=%d tid=%d", ck.Quantum, ck.PID, ck.TID)
	}

	i := cands[rng.Intn(len(cands))]
	ev := &out.Events[i]
	switch rng.Intn(3) {
	case 0:
		delta := uint64(1 + rng.Intn(256))
		ev.Quantum += delta
		return out, fmt.Sprintf("shift %s by +%d quanta (now q=%d)", ev.Kind, delta, ev.Quantum)
	case 1:
		desc := fmt.Sprintf("drop recorded %s at q=%d", ev.Kind, ev.Quantum)
		out.Events = append(out.Events[:i], out.Events[i+1:]...)
		return out, desc
	default:
		if ev.Kind == trace.NDRPCFault {
			ev.Flags |= trace.NDFDrop
			ev.Delay = 0
			return out, fmt.Sprintf("harden rpc-fault #%d to a drop", ev.Index)
		}
		delta := uint64(1 + rng.Intn(64))
		ev.Quantum += delta
		return out, fmt.Sprintf("shift %s by +%d quanta (now q=%d)", ev.Kind, delta, ev.Quantum)
	}
}
