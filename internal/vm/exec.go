package vm

import (
	"encoding/binary"
	"fmt"

	"traceback/internal/isa"
)

// Memory access helpers. All return ok=false on out-of-range or
// null-page access; the interpreter converts that into SIGSEGV.

func (p *Process) memOK(addr uint64, size uint64) bool {
	return addr >= 4096 && addr+size <= uint64(len(p.Mem))
}

// ReadU64 reads a 64-bit word (runtime/service use; no fault).
func (p *Process) ReadU64(addr uint64) (uint64, bool) {
	if !p.memOK(addr, 8) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(p.Mem[addr:]), true
}

// WriteU64 writes a 64-bit word.
func (p *Process) WriteU64(addr uint64, v uint64) bool {
	if !p.memOK(addr, 8) {
		return false
	}
	binary.LittleEndian.PutUint64(p.Mem[addr:], v)
	return true
}

// ReadU32 reads a 32-bit word.
func (p *Process) ReadU32(addr uint64) (uint32, bool) {
	if !p.memOK(addr, 4) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(p.Mem[addr:]), true
}

// WriteU32 writes a 32-bit word.
func (p *Process) WriteU32(addr uint64, v uint32) bool {
	if !p.memOK(addr, 4) {
		return false
	}
	binary.LittleEndian.PutUint32(p.Mem[addr:], v)
	return true
}

// ReadBytes copies n bytes out of process memory.
func (p *Process) ReadBytes(addr uint64, n uint64) ([]byte, bool) {
	if !p.memOK(addr, n) {
		return nil, false
	}
	out := make([]byte, n)
	copy(out, p.Mem[addr:addr+n])
	return out, true
}

// WriteBytes copies b into process memory.
func (p *Process) WriteBytes(addr uint64, b []byte) bool {
	if !p.memOK(addr, uint64(len(b))) {
		return false
	}
	copy(p.Mem[addr:], b)
	return true
}

func (t *Thread) push(v uint64) bool {
	t.Regs[isa.SP] -= 8
	return t.Proc.WriteU64(t.Regs[isa.SP], v)
}

func (t *Thread) pop() (uint64, bool) {
	v, ok := t.Proc.ReadU64(t.Regs[isa.SP])
	if ok {
		t.Regs[isa.SP] += 8
	}
	return v, ok
}

// stepResult describes why a thread stopped executing mid-slice.
type stepResult int

const (
	stepOK stepResult = iota
	stepBlocked
	// stepRetry blocks the thread WITHOUT advancing the PC: the
	// syscall re-executes when the thread wakes (RPC receive).
	stepRetry
	stepExited
	stepFault
)

// exec executes a single instruction of t. On a fault it returns
// stepFault with the signal; the caller routes it through the
// first-chance hook and signal dispatch.
func (m *Machine) exec(t *Thread) (stepResult, int) {
	p := t.Proc
	if t.PC >= uint64(len(p.Code)) {
		return stepFault, SigSegv
	}
	if m.OnStep != nil {
		m.OnStep(t)
	}
	in := p.Code[t.PC]
	m.clock += uint64(in.Cost())
	p.Cycles += uint64(in.Cost())
	p.lastProgress = m.clock
	r := &t.Regs
	next := t.PC + 1

	switch in.Op {
	case isa.NOP:
	case isa.MOVI:
		r[in.A] = uint64(int64(in.Imm))
	case isa.MOV:
		r[in.A] = r[in.B]
	case isa.ADD:
		r[in.A] = r[in.B] + r[in.C]
	case isa.SUB:
		r[in.A] = r[in.B] - r[in.C]
	case isa.MUL:
		r[in.A] = uint64(int64(r[in.B]) * int64(r[in.C]))
	case isa.DIV:
		if r[in.C] == 0 {
			return stepFault, SigFpe
		}
		r[in.A] = uint64(int64(r[in.B]) / int64(r[in.C]))
	case isa.MOD:
		if r[in.C] == 0 {
			return stepFault, SigFpe
		}
		r[in.A] = uint64(int64(r[in.B]) % int64(r[in.C]))
	case isa.AND:
		r[in.A] = r[in.B] & r[in.C]
	case isa.OR:
		r[in.A] = r[in.B] | r[in.C]
	case isa.XOR:
		r[in.A] = r[in.B] ^ r[in.C]
	case isa.SHL:
		r[in.A] = r[in.B] << (r[in.C] & 63)
	case isa.SHR:
		r[in.A] = uint64(int64(r[in.B]) >> (r[in.C] & 63))
	case isa.ADDI:
		r[in.A] = r[in.B] + uint64(int64(in.Imm))
	case isa.NEG:
		r[in.A] = -r[in.B]
	case isa.NOT:
		r[in.A] = ^r[in.B]
	case isa.CMPEQ:
		r[in.A] = b2u(r[in.B] == r[in.C])
	case isa.CMPNE:
		r[in.A] = b2u(r[in.B] != r[in.C])
	case isa.CMPLT:
		r[in.A] = b2u(int64(r[in.B]) < int64(r[in.C]))
	case isa.CMPLE:
		r[in.A] = b2u(int64(r[in.B]) <= int64(r[in.C]))
	case isa.BEQ:
		if r[in.A] == r[in.B] {
			next = uint64(in.Imm)
		}
	case isa.BNE:
		if r[in.A] != r[in.B] {
			next = uint64(in.Imm)
		}
	case isa.BLT:
		if int64(r[in.A]) < int64(r[in.B]) {
			next = uint64(in.Imm)
		}
	case isa.BLE:
		if int64(r[in.A]) <= int64(r[in.B]) {
			next = uint64(in.Imm)
		}
	case isa.BGT:
		if int64(r[in.A]) > int64(r[in.B]) {
			next = uint64(in.Imm)
		}
	case isa.BGE:
		if int64(r[in.A]) >= int64(r[in.B]) {
			next = uint64(in.Imm)
		}
	case isa.BEQI:
		if int64(r[in.A]) == int64(int8(in.C)) {
			next = uint64(in.Imm)
		}
	case isa.BNEI:
		if int64(r[in.A]) != int64(int8(in.C)) {
			next = uint64(in.Imm)
		}
	case isa.JMP:
		next = uint64(in.Imm)
	case isa.JTAB:
		idx := int64(r[in.A])
		if idx < 0 || idx >= int64(in.C) {
			return stepFault, SigSegv
		}
		next = t.PC + 1 + uint64(idx)
	case isa.CALL:
		if !t.push(t.PC + 1) {
			return stepFault, SigSegv
		}
		next = uint64(in.Imm)
	case isa.CALR:
		target := r[in.A]
		if target >= uint64(len(p.Code)) {
			return stepFault, SigSegv
		}
		if !t.push(t.PC + 1) {
			return stepFault, SigSegv
		}
		next = target
	case isa.CALX, isa.GADDR, isa.LDFN:
		// These are resolved at load time; reaching one means the
		// code was never properly loaded.
		return stepFault, SigIll
	case isa.RET:
		ra, ok := t.pop()
		if !ok {
			return stepFault, SigSegv
		}
		switch {
		case ra == threadExitMarker:
			t.ExitValue = r[isa.RV]
			m.exitThread(t)
			return stepExited, 0
		case ra == handlerReturnMarker:
			m.returnFromSignal(t)
			return stepOK, 0
		case ra >= uint64(len(p.Code)):
			// Wild return: a corrupted stack (the Figure 5 story).
			return stepFault, SigSegv
		default:
			next = ra
		}
	case isa.LD:
		v, ok := p.ReadU64(r[in.B] + uint64(int64(in.Imm)))
		if !ok {
			return stepFault, SigSegv
		}
		r[in.A] = v
	case isa.ST:
		if !p.WriteU64(r[in.A]+uint64(int64(in.Imm)), r[in.B]) {
			return stepFault, SigSegv
		}
	case isa.LD4:
		v, ok := p.ReadU32(r[in.B] + uint64(int64(in.Imm)))
		if !ok {
			return stepFault, SigSegv
		}
		r[in.A] = uint64(int64(int32(v))) // sign-extend (sentinel check)
	case isa.ST4:
		if !p.WriteU32(r[in.A]+uint64(int64(in.Imm)), uint32(r[in.B])) {
			return stepFault, SigSegv
		}
	case isa.STI4:
		if !p.WriteU32(r[in.A], uint32(in.Imm)) {
			return stepFault, SigSegv
		}
	case isa.ORM4:
		v, ok := p.ReadU32(r[in.A])
		if !ok {
			return stepFault, SigSegv
		}
		if !p.WriteU32(r[in.A], v|uint32(in.Imm)) {
			return stepFault, SigSegv
		}
	case isa.PUSH:
		if !t.push(r[in.A]) {
			return stepFault, SigSegv
		}
	case isa.POP:
		v, ok := t.pop()
		if !ok {
			return stepFault, SigSegv
		}
		r[in.A] = v
	case isa.TLSLD:
		r[in.A] = t.TLS[in.C%isa.NumTLSSlots]
	case isa.TLSST:
		t.TLS[in.C%isa.NumTLSSlots] = r[in.A]
	case isa.SYS:
		res, sig := m.syscall(t, int(in.Imm))
		if res == stepFault {
			return stepFault, sig
		}
		if res == stepRetry {
			return stepBlocked, 0 // PC stays on the SYS instruction
		}
		t.PC = next
		return res, 0
	case isa.HLT:
		return stepFault, SigIll
	default:
		return stepFault, SigIll
	}
	t.PC = next
	return stepOK, 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// RPCServerFault is the status a blocked RPC caller receives when the
// serving thread dies of an unhandled fault (the DCOM
// RPC_E_SERVERFAULT analog of Figure 6).
const RPCServerFault = 0x80010105

// fault routes a fault through the first-chance hook (paper §3.7.2)
// and then either runs a registered handler or terminates the process
// abnormally.
func (m *Machine) fault(t *Thread, sig int) {
	p := t.Proc
	if m.met != nil {
		m.met.faults.Inc()
	}
	p.Hooks.OnException(t, sig, t.PC)
	if h, ok := p.Handlers[sig]; ok && h != 0 && len(t.sigCtx) < 8 {
		if m.met != nil {
			m.met.signals.Inc()
		}
		// Save context, enter the handler with the signal number as
		// its argument; its RET unwinds through the marker.
		ctx := sigContext{regs: t.Regs, pc: t.PC, sig: sig}
		t.sigCtx = append(t.sigCtx, ctx)
		t.push(handlerReturnMarker)
		t.Regs[isa.A1] = uint64(sig)
		t.PC = h
		return
	}
	// A dying RPC server must not strand its caller: the fault is
	// converted to an error status on the client side (Figure 6).
	ReplyToFault(t, RPCServerFault)
	m.terminate(p, sig)
}

// returnFromSignal restores the interrupted context. For synchronous
// faults, resuming re-executes the faulting instruction (a handler
// that does not repair state will fault again, as on real hardware);
// we resume at the next instruction instead for non-repairable
// synthetic faults, matching the re-raise semantics the runtime needs
// to trace "where control resumed" (paper §3.7.3).
func (m *Machine) returnFromSignal(t *Thread) {
	if len(t.sigCtx) == 0 {
		m.terminate(t.Proc, SigIll)
		return
	}
	ctx := t.sigCtx[len(t.sigCtx)-1]
	t.sigCtx = t.sigCtx[:len(t.sigCtx)-1]
	t.Regs = ctx.regs
	t.PC = ctx.pc + 1 // resume after the interrupted instruction
	t.Proc.Hooks.OnSignalReturn(t)
}

// terminate ends the process abnormally (sig != 0) or normally.
func (m *Machine) terminate(p *Process, sig int) {
	if p.Exited {
		return
	}
	p.Exited = true
	p.FatalSignal = sig
	p.Hooks.OnProcessExit(p, sig)
	for _, t := range p.Threads {
		if t.State != Exited {
			t.State = Exited
		}
	}
}

// KillProcess terminates the process abruptly (kill -9): no hook, no
// handler — the trace buffers hold whatever sub-buffering committed.
func (m *Machine) KillProcess(p *Process) {
	if p.Exited {
		return
	}
	if m.World != nil && m.World.recorder != nil {
		m.World.recorder.RecordKill(m, p)
	}
	p.Exited = true
	p.FatalSignal = SigKill
	for _, t := range p.Threads {
		if t.State != Exited {
			t.State = Exited
			t.KilledAbruptly = true
		}
	}
}

func (m *Machine) exitThread(t *Thread) {
	t.State = Exited
	t.Proc.Hooks.OnThreadExit(t)
	for _, w := range t.joinWaiters {
		if w.State == BlockedJoin && w.joinTID == t.TID {
			w.State = Runnable
			w.Regs[isa.RV] = t.ExitValue
		}
	}
	t.joinWaiters = nil
}

// runnable collects threads that can run now, waking sleepers.
func (m *Machine) runnable() []*Thread {
	var out []*Thread
	for _, p := range m.procs {
		if p.Exited {
			continue
		}
		for _, t := range p.Threads {
			switch t.State {
			case Sleeping:
				if m.clock >= t.wakeAt {
					t.State = Runnable
					out = append(out, t)
				}
			case Runnable:
				out = append(out, t)
			}
		}
	}
	// Deterministic order.
	sortThreads(out)
	return out
}

func sortThreads(ts []*Thread) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && threadLess(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func threadLess(a, b *Thread) bool {
	if a.Proc.PID != b.Proc.PID {
		return a.Proc.PID < b.Proc.PID
	}
	return a.TID < b.TID
}

// Step runs one scheduling quantum on the machine: the next runnable
// thread executes up to Slice instructions. It returns false when no
// thread could run (all exited, blocked, or sleeping).
func (m *Machine) Step() bool {
	if m.World != nil {
		m.World.quantum++
		if m.World.injector != nil {
			m.World.injector.AtQuantum(m)
		}
	}
	ts := m.runnable()
	if len(ts) == 0 {
		// Advance the clock to the nearest sleeper's wake time so
		// sleep-only idle periods pass.
		var wake uint64
		found := false
		for _, p := range m.procs {
			if p.Exited {
				continue
			}
			for _, t := range p.Threads {
				if t.State == Sleeping && (!found || t.wakeAt < wake) {
					wake, found = t.wakeAt, true
				}
			}
		}
		if found {
			m.clock = wake
			return true
		}
		return false
	}
	m.rrIndex = (m.rrIndex + 1) % len(ts)
	t := ts[m.rrIndex]
	if m.World != nil && m.World.recorder != nil {
		m.World.recorder.RecordQuantum(m, t)
	}
	for i := 0; i < m.Slice; i++ {
		if t.State != Runnable || t.Proc.Exited {
			break
		}
		res, sig := m.exec(t)
		switch res {
		case stepFault:
			m.fault(t, sig)
		case stepBlocked, stepExited:
			return true
		}
	}
	return true
}

// Run steps the machine until done returns true, no thread can run,
// or maxSteps quanta elapse. It returns the number of quanta used.
func (m *Machine) Run(maxSteps int, done func() bool) int {
	for i := 0; i < maxSteps; i++ {
		if done != nil && done() {
			return i
		}
		if !m.Step() {
			return i
		}
	}
	return maxSteps
}

// Run steps the world until done returns true or nothing can run,
// always advancing the machine with the lowest clock (keeping skewed
// clocks causally plausible). Returns the quanta used.
func (w *World) Run(maxSteps int, done func() bool) int {
	for i := 0; i < maxSteps; i++ {
		if done != nil && done() {
			return i
		}
		var pick *Machine
		for _, m := range w.Machines {
			m.deliverDue()
			if pick == nil || m.clock < pick.clock {
				pick = m
			}
		}
		if pick == nil {
			return i
		}
		if !pick.Step() {
			// This machine is idle; try the others once, and if all
			// are idle, stop.
			idleAll := true
			for _, m := range w.Machines {
				m.deliverDue()
				if m.Step() {
					idleAll = false
					break
				}
			}
			if idleAll {
				return i
			}
		}
	}
	return maxSteps
}

// RunProcess drives a single-machine world until the process exits;
// convenience for workloads and tests.
func RunProcess(p *Process, maxSteps int) error {
	n := p.Machine.World.Run(maxSteps, func() bool { return p.Exited })
	if !p.Exited && n >= maxSteps {
		return fmt.Errorf("vm: process %s did not finish in %d quanta", p.Name, maxSteps)
	}
	return nil
}
