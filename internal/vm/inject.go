package vm

// Deterministic fault injection (the Box-of-Pain co-evolution story:
// tracing and fault injection drive each other). The VM already owns
// every source of nondeterminism — scheduling quanta, signal
// delivery, RPC transport — so faults are injected at exactly those
// points, parameterized by a seed instead of wall-clock chaos. An
// installed Injector is consulted:
//
//   - at the top of every scheduling quantum (Machine.Step), the
//     preemption point where kills, asynchronous signals, and module
//     unloads land;
//   - at every RPC enqueue (request side) and reply copy (reply
//     side), where the transport may drop, delay, or duplicate.
//
// With no injector installed every consult is a single nil check, so
// normal runs — including the paper-table benchmarks — are untouched.

// RPCFault describes one message's transport perturbation.
type RPCFault struct {
	// Drop discards the message: the caller stays blocked forever
	// (request side) or never sees its reply (reply side) — the hang
	// shapes the service heartbeat exists for.
	Drop bool
	// Delay adds receiver-clock cycles before the message becomes
	// visible (request side only; replies are copied synchronously).
	// Delaying one message past a later one reorders them: rpcRecv
	// delivers whichever queued message is due first.
	Delay uint64
	// Duplicate enqueues a second identical delivery (request side
	// only) — the at-least-once transport failure mode.
	Duplicate bool
}

// Injector observes the VM's deterministic choice points and may
// perturb them. Implementations must be deterministic functions of
// their own state and the observable VM state; the campaign
// orchestrator derives them from a seed.
type Injector interface {
	// AtQuantum fires at the top of every scheduling quantum on m,
	// before the next thread is picked. It may kill processes
	// (Machine.KillProcess), deliver signals (Machine.InjectSignal),
	// or unload modules (Process.Unload).
	AtQuantum(m *Machine)
	// AtRPC fires for every RPC message: on the request side when the
	// caller enqueues (reply=false), on the reply side before the
	// response is copied back (reply=true).
	AtRPC(from *Thread, endpoint uint64, reply bool) RPCFault
}

// SetInjector installs (or, with nil, removes) the world's fault
// injector.
func (w *World) SetInjector(inj Injector) { w.injector = inj }

// Injector returns the installed fault injector (nil when none).
func (w *World) Injector() Injector { return w.injector }

// InjectSignal delivers sig to t asynchronously, as if raised at a
// preemption point: the thread's current instruction has not executed
// yet, so delivery is attributed to the previously executed
// instruction and — if a handler runs — control resumes exactly where
// it was interrupted, re-executing nothing and skipping nothing.
// Only runnable or sleeping threads of live processes are eligible
// (a blocked syscall is not interruptible in this VM); sleepers are
// woken to die or to handle. Reports whether the signal was
// delivered.
func (m *Machine) InjectSignal(t *Thread, sig int) bool {
	p := t.Proc
	if p.Exited || t.State == Exited || t.PC == 0 {
		return false
	}
	if t.State != Runnable && t.State != Sleeping {
		return false
	}
	if t.State == Sleeping {
		t.State = Runnable
	}
	// Delivery is now certain; record it with the pre-delivery PC
	// (backed up below) so a replay can re-inject at the same point.
	if w := m.World; w != nil && w.recorder != nil {
		w.recorder.RecordSignal(m, t, sig, t.PC)
	}
	// fault() records the faulting address as t.PC and resumes
	// handlers at t.PC+1 (synchronous semantics: re-execute nothing
	// past the faulting instruction). For asynchronous delivery the
	// current PC has NOT executed, so back up one: the recorded
	// address is the last executed instruction and the handler
	// resumes at the original PC.
	t.PC--
	m.fault(t, sig)
	return true
}
