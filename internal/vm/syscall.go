package vm

import (
	"fmt"
	"sync"

	"traceback/internal/isa"
)

// syscall dispatches SYS instructions. Arguments arrive in r1..r4 and
// the result goes in r0. The runtime hook observes every syscall
// (timestamp insertion at synchronization points) and services the
// TraceBack-specific ones.
func (m *Machine) syscall(t *Thread, num int) (stepResult, int) {
	p := t.Proc
	r := &t.Regs
	if m.met != nil {
		m.met.syscalls[classifySyscall(num)].Inc()
	}
	p.Hooks.OnSyscall(t, num)

	switch num {
	case isa.SysExit:
		p.ExitCode = int(int64(r[isa.A1]))
		m.terminate(p, 0)
		return stepExited, 0

	case isa.SysWrite:
		b, ok := p.ReadBytes(r[isa.A2], r[isa.A3])
		if !ok {
			return stepFault, SigSegv
		}
		p.Out = append(p.Out, b...)
		r[isa.RV] = r[isa.A3]

	case isa.SysThreadCreate:
		nt, err := p.StartThread(r[isa.A1], r[isa.A2])
		if err != nil {
			r[isa.RV] = ^uint64(0)
		} else {
			r[isa.RV] = uint64(nt.TID)
		}

	case isa.SysThreadJoin:
		target, ok := p.Threads[int(r[isa.A1])]
		if !ok {
			r[isa.RV] = ^uint64(0)
			break
		}
		if target.State == Exited {
			r[isa.RV] = target.ExitValue
			break
		}
		t.State = BlockedJoin
		t.joinTID = target.TID
		target.joinWaiters = append(target.joinWaiters, t)
		return stepBlocked, 0

	case isa.SysSleep:
		d := int64(r[isa.A1])
		if d < 0 {
			// A negative sleep raises an exception (the Oracle
			// random-argument-to-sleep story, paper §6.1).
			return stepFault, SigArg
		}
		t.State = Sleeping
		t.wakeAt = m.clock + uint64(d)
		return stepBlocked, 0

	case isa.SysMutexLock:
		addr := uint32(r[isa.A1])
		mu := p.mutexes[addr]
		if mu == nil {
			mu = &mutexState{}
			p.mutexes[addr] = mu
		}
		if mu.owner == nil {
			mu.owner = t
			break
		}
		if mu.owner == t {
			// Self-deadlock: block forever (hang detection fodder).
			t.State = BlockedMutex
			t.blockedAddr = addr
			return stepBlocked, 0
		}
		mu.waiters = append(mu.waiters, t)
		t.State = BlockedMutex
		t.blockedAddr = addr
		return stepBlocked, 0

	case isa.SysMutexUnlock:
		addr := uint32(r[isa.A1])
		mu := p.mutexes[addr]
		if mu == nil || mu.owner != t {
			break // unlocking a mutex you don't own is a no-op
		}
		if len(mu.waiters) > 0 {
			next := mu.waiters[0]
			mu.waiters = mu.waiters[1:]
			mu.owner = next
			next.State = Runnable
		} else {
			mu.owner = nil
		}

	case isa.SysClock:
		r[isa.RV] = m.Timestamp()

	case isa.SysRaise:
		return stepFault, int(r[isa.A1])

	case isa.SysKill:
		target, ok := p.Threads[int(r[isa.A1])]
		sig := int(r[isa.A2])
		if !ok {
			r[isa.RV] = ^uint64(0)
			break
		}
		if sig == SigKill {
			// Abrupt: no runtime notification, TLS lost (paper §3.2).
			target.State = Exited
			target.KilledAbruptly = true
		} else if target == t {
			return stepFault, sig
		}
		// Cross-thread non-KILL signals are delivered as if raised on
		// the target at its next scheduling; simplified to immediate
		// state for determinism.

	case isa.SysSignal:
		sig := int(r[isa.A1])
		prev := p.Handlers[sig]
		p.Handlers[sig] = r[isa.A2]
		r[isa.RV] = prev

	case isa.SysAlloc:
		r[isa.RV] = uint64(p.AllocRegion(uint32(r[isa.A1])))

	case isa.SysSnap:
		reason := "api"
		if b, ok := p.ReadBytes(r[isa.A1], r[isa.A2]); ok && len(b) > 0 {
			reason = string(b)
		}
		p.Hooks.OnSnapRequest(t, reason)

	case isa.SysTBWrap:
		r[isa.RV] = p.Hooks.OnBufferWrap(t)

	case isa.SysRand:
		r[isa.RV] = uint64(m.rng.Int63())

	case isa.SysMemcpy:
		dst, src, n := r[isa.A1], r[isa.A2], r[isa.A3]
		// Deliberately unchecked against object bounds — only against
		// the address space — so buffer overruns corrupt neighboring
		// memory exactly as the paper's memcpy war stories describe.
		b, ok := p.ReadBytes(src, n)
		if !ok || !p.WriteBytes(dst, b) {
			return stepFault, SigSegv
		}
		m.clock += n / 8

	case isa.SysGetTID:
		r[isa.RV] = uint64(t.TID)

	case isa.SysPrintInt:
		p.Out = append(p.Out, []byte(fmt.Sprintf("%d\n", int64(r[isa.A1])))...)

	case isa.SysGetArg:
		r[isa.RV] = t.StartArg

	case isa.SysYield:
		return stepBlocked, 0 // stays Runnable; just ends the slice

	case isa.SysIORead:
		m.clock += CostDiskBase + r[isa.A1]*CostDiskPerKB/1024
	case isa.SysIOWrite:
		m.clock += CostDiskBase + r[isa.A1]*CostDiskPerKB/1024
	case isa.SysNetSend:
		m.clock += CostNetBase + r[isa.A1]*CostNetPerKB/1024

	case isa.SysLoadModule:
		r[isa.RV] = m.sysLoadModule(t)

	case isa.SysUnloadModule:
		h := int(r[isa.A1])
		for _, lm := range p.Modules {
			if lm.Handle == h {
				p.Unload(lm)
				break
			}
		}

	case isa.SysRPCCall:
		return m.rpcCall(t)
	case isa.SysRPCRecv:
		return m.rpcRecv(t)
	case isa.SysRPCReply:
		return m.rpcReply(t)

	default:
		return stepFault, SigIll
	}
	return stepOK, 0
}

// ModuleResolver lets a process load modules by name at runtime
// (SysLoadModule). Installed by the host harness.
type ModuleResolver func(name string) *LoadedModule

// Resolver is consulted by SysLoadModule; set per process. The map
// is package-level shared state, so it is mutex-guarded: harnesses
// that build worlds concurrently (parallel tests, the reconstruction
// pipeline's snap factories) would otherwise race on it.
var (
	resolversMu sync.RWMutex
	resolvers   = map[*Process]ModuleResolver{}
)

// SetModuleResolver installs the dynamic-load resolver for p.
func (p *Process) SetModuleResolver(r ModuleResolver) {
	resolversMu.Lock()
	resolvers[p] = r
	resolversMu.Unlock()
}

func (m *Machine) sysLoadModule(t *Thread) uint64 {
	p := t.Proc
	resolversMu.RLock()
	res := resolvers[p]
	resolversMu.RUnlock()
	if res == nil {
		return 0
	}
	name, ok := p.ReadBytes(t.Regs[isa.A1], t.Regs[isa.A2])
	if !ok {
		return 0
	}
	lm := res(string(name))
	if lm == nil {
		return 0
	}
	return uint64(lm.Handle)
}
