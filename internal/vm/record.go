package vm

// Deterministic nondeterminism recording (the rr / iReplayer line).
// A Recorder is the read-only dual of the Injector: where the
// injector PERTURBS the VM's choice points, the recorder OBSERVES
// them, logging every decision that is not a pure function of the
// initial world state. The VM already routes all such decisions
// through a handful of sites — quantum scheduling, asynchronous
// signal delivery, abrupt kills, module unloads, and the RPC
// transport — so a log of those sites is sufficient to re-execute a
// run exactly (see internal/replay).
//
// With no recorder installed every site is a single nil check and the
// machine clock is untouched: recording-off runs — including the
// paper-table benchmarks — are cycle-identical to a build without
// this file (the Table 1 parity test in internal/replay proves it).

// Recorder observes the VM's nondeterminism sites. Implementations
// must not mutate VM state; they are called mid-step with the machine
// in a consistent state. internal/replay provides the standard
// implementation (and a replaying Driver that implements BOTH
// Injector and Recorder, re-firing a log while checking conformance).
type Recorder interface {
	// RecordQuantum fires once per scheduling quantum, after the next
	// thread t has been chosen and before it executes. The world
	// quantum counter (World.Quantum) has already been advanced for
	// this quantum.
	RecordQuantum(m *Machine, t *Thread)
	// RecordSignal fires when an asynchronous signal is delivered via
	// InjectSignal, after eligibility checks pass and before any state
	// changes. prePC is the victim's PC before delivery backs it up —
	// the instruction that had not yet executed.
	RecordSignal(m *Machine, t *Thread, sig int, prePC uint64)
	// RecordKill fires when a live process is killed abruptly
	// (KillProcess), before its threads are torn down.
	RecordKill(m *Machine, p *Process)
	// RecordUnload fires when a loaded module is unloaded.
	RecordUnload(p *Process, lm *LoadedModule)
	// RecordRPCFault fires for EVERY RPC transport consult — request
	// enqueue and reply copy — with the injector's verdict f (the zero
	// RPCFault when no injector is installed or it declined). Firing
	// unconditionally lets the recorder count message ordinals the
	// same way a replaying injector will.
	RecordRPCFault(from *Thread, endpoint uint64, reply bool, f RPCFault)
	// RecordRPCDeliver fires when a receiver dequeues a request:
	// the delivery order replay must reproduce.
	RecordRPCDeliver(to *Thread, endpoint uint64, from *Thread, payloadLen int)
}

// SetRecorder installs (or, with nil, removes) the world's
// nondeterminism recorder.
func (w *World) SetRecorder(r Recorder) { w.recorder = r }

// Recorder returns the installed recorder (nil when none).
func (w *World) Recorder() Recorder { return w.recorder }

// Quantum returns the world-global scheduling quantum counter: the
// number of Machine.Step calls across all machines since the world
// was created. It is the alignment backbone of record-and-replay —
// a recorded event stamped with quantum Q re-fires when a replay's
// counter reaches Q.
func (w *World) Quantum() uint64 { return w.quantum }

// MachineIndex returns m's index in the world's machine list (-1 if
// absent). Machine order is creation order and thus deterministic.
func (w *World) MachineIndex(m *Machine) int {
	for i, x := range w.Machines {
		if x == m {
			return i
		}
	}
	return -1
}
