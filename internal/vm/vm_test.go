package vm

import (
	"testing"

	"traceback/internal/isa"
	"traceback/internal/module"
)

func newProc(t *testing.T, name string, code []isa.Instr, funcs ...module.Func) (*Process, *Machine) {
	t.Helper()
	w := NewWorld(1)
	m := w.NewMachine("m0", 0)
	p := m.NewProcess(name, nil)
	if len(funcs) == 0 {
		funcs = []module.Func{{Name: "main", Entry: 0, End: uint32(len(code)), Exported: true}}
	}
	mod := &module.Module{Name: name, Code: code, Funcs: funcs}
	if _, err := p.Load(mod); err != nil {
		t.Fatal(err)
	}
	return p, m
}

func run(t *testing.T, p *Process) {
	t.Helper()
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	if err := RunProcess(p, 1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestArithmeticAndExit(t *testing.T) {
	// exit(6*7)
	p, _ := newProc(t, "arith", []isa.Instr{
		{Op: isa.MOVI, A: 5, Imm: 6},
		{Op: isa.MOVI, A: 6, Imm: 7},
		{Op: isa.MUL, A: 1, B: 5, C: 6},
		{Op: isa.SYS, Imm: isa.SysExit},
	})
	run(t, p)
	if p.ExitCode != 42 {
		t.Errorf("exit code = %d, want 42", p.ExitCode)
	}
	if p.FatalSignal != 0 {
		t.Errorf("fatal signal = %d", p.FatalSignal)
	}
}

func TestLoopAndBranch(t *testing.T) {
	// sum 1..10 = 55
	p, _ := newProc(t, "loop", []isa.Instr{
		{Op: isa.MOVI, A: 5, Imm: 0},  // sum
		{Op: isa.MOVI, A: 6, Imm: 1},  // i
		{Op: isa.MOVI, A: 7, Imm: 10}, // limit
		{Op: isa.BGT, A: 6, B: 7, Imm: 7},
		{Op: isa.ADD, A: 5, B: 5, C: 6},
		{Op: isa.ADDI, A: 6, B: 6, Imm: 1},
		{Op: isa.JMP, Imm: 3},
		{Op: isa.MOV, A: 1, B: 5},
		{Op: isa.SYS, Imm: isa.SysExit},
	})
	run(t, p)
	if p.ExitCode != 55 {
		t.Errorf("exit code = %d, want 55", p.ExitCode)
	}
}

func TestCallRet(t *testing.T) {
	// main: r1 = f(); exit(r1); f returns 9.
	code := []isa.Instr{
		{Op: isa.CALL, Imm: 4},
		{Op: isa.MOV, A: 1, B: 0},
		{Op: isa.SYS, Imm: isa.SysExit},
		{Op: isa.HLT},
		{Op: isa.MOVI, A: 0, Imm: 9}, // f
		{Op: isa.RET},
	}
	p, _ := newProc(t, "call", code,
		module.Func{Name: "main", Entry: 0, End: 4, Exported: true},
		module.Func{Name: "f", Entry: 4, End: 6})
	run(t, p)
	if p.ExitCode != 9 {
		t.Errorf("exit code = %d, want 9", p.ExitCode)
	}
}

func TestDivideByZeroTerminates(t *testing.T) {
	p, _ := newProc(t, "div0", []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 1},
		{Op: isa.MOVI, A: 2, Imm: 0},
		{Op: isa.DIV, A: 3, B: 1, C: 2},
		{Op: isa.SYS, Imm: isa.SysExit},
	})
	run(t, p)
	if p.FatalSignal != SigFpe {
		t.Errorf("fatal signal = %s, want SIGFPE", SignalName(p.FatalSignal))
	}
}

func TestNullDereferenceFaults(t *testing.T) {
	p, _ := newProc(t, "null", []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 0},
		{Op: isa.LD, A: 2, B: 1},
		{Op: isa.SYS, Imm: isa.SysExit},
	})
	run(t, p)
	if p.FatalSignal != SigSegv {
		t.Errorf("fatal signal = %s, want SIGSEGV", SignalName(p.FatalSignal))
	}
}

func TestWildReturnFaults(t *testing.T) {
	// Corrupt the return address on the stack, then RET.
	p, _ := newProc(t, "wild", []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 0x0BAD},
		{Op: isa.PUSH, A: 1},
		{Op: isa.RET},
	})
	run(t, p)
	if p.FatalSignal != SigSegv {
		t.Errorf("fatal signal = %s, want SIGSEGV (wild return)", SignalName(p.FatalSignal))
	}
}

func TestSignalHandlerRunsAndReturns(t *testing.T) {
	// Install a handler for SIGFPE, divide by zero, handler sets a
	// global flag, then execution resumes after the fault.
	code := []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: SigFpe},
		{Op: isa.MOVI, A: 2, Imm: 9}, // handler addr (abs, module at 0)
		{Op: isa.SYS, Imm: isa.SysSignal},
		{Op: isa.MOVI, A: 5, Imm: 1},
		{Op: isa.MOVI, A: 6, Imm: 0},
		{Op: isa.DIV, A: 7, B: 5, C: 6}, // faults; handler runs; resume after
		{Op: isa.MOVI, A: 1, Imm: 77},
		{Op: isa.SYS, Imm: isa.SysExit},
		{Op: isa.HLT},
		// handler: store 1 at address 8192 and return
		{Op: isa.MOVI, A: 3, Imm: 8192}, // 9
		{Op: isa.MOVI, A: 4, Imm: 1},
		{Op: isa.ST, A: 3, B: 4},
		{Op: isa.RET},
	}
	p, _ := newProc(t, "sig", code,
		module.Func{Name: "main", Entry: 0, End: 9, Exported: true},
		module.Func{Name: "handler", Entry: 9, End: 13})
	// Reserve the address the handler writes.
	if a := p.AllocRegion(8192); a == 0 {
		t.Fatal("alloc failed")
	}
	run(t, p)
	if p.FatalSignal != 0 || p.ExitCode != 77 {
		t.Fatalf("signal=%s exit=%d, want clean exit 77", SignalName(p.FatalSignal), p.ExitCode)
	}
	v, _ := p.ReadU64(8192)
	if v != 1 {
		t.Error("handler never ran")
	}
}

func TestNegativeSleepRaisesSigArg(t *testing.T) {
	p, _ := newProc(t, "sleep", []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: -5},
		{Op: isa.SYS, Imm: isa.SysSleep},
		{Op: isa.SYS, Imm: isa.SysExit},
	})
	run(t, p)
	if p.FatalSignal != SigArg {
		t.Errorf("fatal signal = %s, want SIGARG", SignalName(p.FatalSignal))
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	p, m := newProc(t, "sleep2", []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 100000},
		{Op: isa.SYS, Imm: isa.SysSleep},
		{Op: isa.MOVI, A: 1, Imm: 0},
		{Op: isa.SYS, Imm: isa.SysExit},
	})
	run(t, p)
	if m.Clock() < 100000 {
		t.Errorf("clock = %d, want >= 100000 after sleep", m.Clock())
	}
}

func TestThreadsCreateJoin(t *testing.T) {
	// main spawns worker(arg=5), joins, exits with its value*2.
	code := []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 8}, // worker entry
		{Op: isa.MOVI, A: 2, Imm: 5}, // arg
		{Op: isa.SYS, Imm: isa.SysThreadCreate},
		{Op: isa.MOV, A: 1, B: 0}, // tid
		{Op: isa.SYS, Imm: isa.SysThreadJoin},
		{Op: isa.ADD, A: 1, B: 0, C: 0}, // 2*value
		{Op: isa.SYS, Imm: isa.SysExit},
		{Op: isa.HLT},
		// worker: return arg+1
		{Op: isa.SYS, Imm: isa.SysGetArg}, // 8
		{Op: isa.ADDI, A: 0, B: 0, Imm: 1},
		{Op: isa.RET},
	}
	p, _ := newProc(t, "threads", code,
		module.Func{Name: "main", Entry: 0, End: 8, Exported: true},
		module.Func{Name: "worker", Entry: 8, End: 11})
	run(t, p)
	if p.ExitCode != 12 {
		t.Errorf("exit code = %d, want 12", p.ExitCode)
	}
}

func TestMutexMutualExclusionAndDeadlock(t *testing.T) {
	// Self-deadlock: lock twice. The process hangs (no runnable
	// threads), which Run reports by returning without process exit.
	code := []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 8192},
		{Op: isa.SYS, Imm: isa.SysMutexLock},
		{Op: isa.MOVI, A: 1, Imm: 8192},
		{Op: isa.SYS, Imm: isa.SysMutexLock}, // deadlock
		{Op: isa.SYS, Imm: isa.SysExit},
	}
	p, m := newProc(t, "dead", code)
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	m.World.Run(100000, func() bool { return p.Exited })
	if p.Exited {
		t.Fatal("self-deadlocked process exited")
	}
	th := p.Threads[1]
	if th.State != BlockedMutex {
		t.Errorf("thread state = %v, want blocked-mutex", th.State)
	}
}

func TestKillMinus9IsAbrupt(t *testing.T) {
	p, m := newProc(t, "victim", []isa.Instr{
		{Op: isa.JMP, Imm: 0}, // spin forever
	})
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	m.World.Run(10, nil)
	m.KillProcess(p)
	if !p.Exited || p.FatalSignal != SigKill {
		t.Fatalf("exited=%v signal=%s", p.Exited, SignalName(p.FatalSignal))
	}
	if !p.Threads[1].KilledAbruptly {
		t.Error("thread not marked abruptly killed")
	}
	// Memory must remain readable post-mortem (snap-from-outside).
	if _, ok := p.ReadU64(8192); !ok {
		t.Error("post-mortem memory read failed")
	}
}

func TestConsoleWrite(t *testing.T) {
	data := []byte("hello\n")
	mod := &module.Module{
		Name: "hello",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 1},
			{Op: isa.GADDR, A: 2, Imm: 0},
			{Op: isa.MOVI, A: 3, Imm: int32(len(data))},
			{Op: isa.SYS, Imm: isa.SysWrite},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Data:  data,
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 6, Exported: true}},
	}
	w := NewWorld(1)
	m := w.NewMachine("m0", 0)
	p := m.NewProcess("hello", nil)
	if _, err := p.Load(mod); err != nil {
		t.Fatal(err)
	}
	run(t, p)
	if p.OutString() != "hello\n" {
		t.Errorf("output = %q", p.OutString())
	}
}

func TestCrossModuleImport(t *testing.T) {
	lib := &module.Module{
		Name: "lib",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 0, Imm: 123},
			{Op: isa.RET},
		},
		Funcs: []module.Func{{Name: "get", Entry: 0, End: 2, Exported: true}},
	}
	app := &module.Module{
		Name: "app",
		Code: []isa.Instr{
			{Op: isa.CALX, Imm: 0},
			{Op: isa.MOV, A: 1, B: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Imports: []module.Import{{Module: "lib", Name: "get"}},
		Funcs:   []module.Func{{Name: "main", Entry: 0, End: 3, Exported: true}},
	}
	w := NewWorld(1)
	m := w.NewMachine("m0", 0)
	p := m.NewProcess("app", nil)
	if _, err := p.Load(lib); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(app); err != nil {
		t.Fatal(err)
	}
	run(t, p)
	if p.ExitCode != 123 {
		t.Errorf("exit code = %d, want 123", p.ExitCode)
	}
}

func TestUnresolvedImportRejected(t *testing.T) {
	app := &module.Module{
		Name:    "app",
		Code:    []isa.Instr{{Op: isa.CALX, Imm: 0}, {Op: isa.RET}},
		Imports: []module.Import{{Name: "missing"}},
		Funcs:   []module.Func{{Name: "main", Entry: 0, End: 2, Exported: true}},
	}
	w := NewWorld(1)
	p := w.NewMachine("m0", 0).NewProcess("app", nil)
	if _, err := p.Load(app); err == nil {
		t.Fatal("unresolved import accepted")
	}
}

func TestRPCRoundTrip(t *testing.T) {
	// Server: recv into 8192, add 1 to first byte, reply.
	server := &module.Module{
		Name: "server",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 7},    // endpoint
			{Op: isa.MOVI, A: 2, Imm: 8192}, // buf
			{Op: isa.MOVI, A: 3, Imm: 64},
			{Op: isa.SYS, Imm: isa.SysRPCRecv},
			{Op: isa.MOVI, A: 4, Imm: 8192},
			{Op: isa.LD, A: 5, B: 4},
			{Op: isa.ADDI, A: 5, B: 5, Imm: 1},
			{Op: isa.ST, A: 4, B: 5},
			{Op: isa.MOVI, A: 1, Imm: 7},
			{Op: isa.MOVI, A: 2, Imm: 0}, // status OK
			{Op: isa.MOVI, A: 3, Imm: 8192},
			{Op: isa.MOVI, A: 4, Imm: 8},
			{Op: isa.SYS, Imm: isa.SysRPCReply},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 15, Exported: true}},
	}
	// Client: store 41 at 8192, call endpoint 7, read reply at 8256.
	client := &module.Module{
		Name: "client",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 4, Imm: 8192},
			{Op: isa.MOVI, A: 5, Imm: 41},
			{Op: isa.ST, A: 4, B: 5},
			{Op: isa.MOVI, A: 1, Imm: 7},
			{Op: isa.MOVI, A: 2, Imm: 8192},
			{Op: isa.MOVI, A: 3, Imm: 8},
			{Op: isa.MOVI, A: 4, Imm: 8256},
			{Op: isa.SYS, Imm: isa.SysRPCCall},
			{Op: isa.MOVI, A: 6, Imm: 8260}, // reply payload after 4-byte len
			{Op: isa.LD, A: 1, B: 6},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 11, Exported: true}},
	}
	w := NewWorld(1)
	m1 := w.NewMachine("m1", 0)
	m2 := w.NewMachine("m2", 500)
	ps := m1.NewProcess("server", nil)
	pc := m2.NewProcess("client", nil)
	for _, pm := range []struct {
		p *Process
		m *module.Module
	}{{ps, server}, {pc, client}} {
		if _, err := pm.p.Load(pm.m); err != nil {
			t.Fatal(err)
		}
		if a := pm.p.AllocRegion(16384); a == 0 {
			t.Fatal("alloc")
		}
		if _, err := pm.p.StartMain(0); err != nil {
			t.Fatal(err)
		}
	}
	w.RegisterEndpoint(7, ps)
	w.Run(1_000_000, func() bool { return pc.Exited && ps.Exited })
	if !pc.Exited || !ps.Exited {
		t.Fatalf("client exited=%v server exited=%v", pc.Exited, ps.Exited)
	}
	if pc.ExitCode != 42 {
		t.Errorf("client exit = %d, want 42 (41+1 via RPC)", pc.ExitCode)
	}
}

func TestClockSkewAffectsTimestamp(t *testing.T) {
	w := NewWorld(1)
	a := w.NewMachine("a", 0)
	b := w.NewMachine("b", 12345)
	if b.Timestamp()-a.Timestamp() != 12345 {
		t.Errorf("skew not reflected: %d vs %d", a.Timestamp(), b.Timestamp())
	}
}

func TestJumpTableDispatchAndFault(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.SYS, Imm: isa.SysGetArg}, // r0 = arg
		{Op: isa.MOV, A: 1, B: 0},
		{Op: isa.JTAB, A: 1, C: 2},
		{Op: isa.JMP, Imm: 5},
		{Op: isa.JMP, Imm: 7},
		{Op: isa.MOVI, A: 1, Imm: 10}, // case 0
		{Op: isa.SYS, Imm: isa.SysExit},
		{Op: isa.MOVI, A: 1, Imm: 20}, // case 1
		{Op: isa.SYS, Imm: isa.SysExit},
	}
	for arg, want := range map[uint64]int{0: 10, 1: 20} {
		p, _ := newProc(t, "jt", code)
		if _, err := p.StartMain(arg); err != nil {
			t.Fatal(err)
		}
		if err := RunProcess(p, 100000); err != nil {
			t.Fatal(err)
		}
		if p.ExitCode != want {
			t.Errorf("arg %d: exit = %d, want %d", arg, p.ExitCode, want)
		}
	}
	// Out-of-range index faults.
	p, _ := newProc(t, "jt", code)
	if _, err := p.StartMain(5); err != nil {
		t.Fatal(err)
	}
	RunProcess(p, 100000)
	if p.FatalSignal != SigSegv {
		t.Errorf("bad jump-table index: signal = %s", SignalName(p.FatalSignal))
	}
}

func TestMemcpyOverrunCorruptsNeighbors(t *testing.T) {
	// The Fidelity story: memcpy past an allocation corrupts the
	// neighboring data structure without an immediate fault.
	p, _ := newProc(t, "memcpy", []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 8192}, // dst
		{Op: isa.MOVI, A: 2, Imm: 9000}, // src
		{Op: isa.MOVI, A: 3, Imm: 64},   // len: overruns the "8-byte object"
		{Op: isa.SYS, Imm: isa.SysMemcpy},
		{Op: isa.MOVI, A: 1, Imm: 0},
		{Op: isa.SYS, Imm: isa.SysExit},
	})
	p.AllocRegion(16384)
	for i := uint64(0); i < 64; i += 8 {
		p.WriteU64(9000+i, 0xAB)
		p.WriteU64(8192+8+i, 7) // "neighboring structure"
	}
	run(t, p)
	if p.FatalSignal != 0 {
		t.Fatalf("memcpy within address space must not fault: %s", SignalName(p.FatalSignal))
	}
	if v, _ := p.ReadU64(8192 + 16); v != 0xAB {
		t.Error("overrun did not corrupt the neighbor")
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (int, uint64) {
		code := []isa.Instr{
			{Op: isa.SYS, Imm: isa.SysRand},
			{Op: isa.MOVI, A: 5, Imm: 1000},
			{Op: isa.MOD, A: 1, B: 0, C: 5},
			{Op: isa.SYS, Imm: isa.SysExit},
		}
		w := NewWorld(99)
		m := w.NewMachine("m", 0)
		p := m.NewProcess("d", nil)
		mod := &module.Module{Name: "d", Code: code,
			Funcs: []module.Func{{Name: "main", Entry: 0, End: 4, Exported: true}}}
		p.Load(mod)
		p.StartMain(0)
		RunProcess(p, 100000)
		return p.ExitCode, m.Clock()
	}
	e1, c1 := runOnce()
	e2, c2 := runOnce()
	if e1 != e2 || c1 != c2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", e1, c1, e2, c2)
	}
}
