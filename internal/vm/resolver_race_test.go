package vm

import (
	"sync"
	"testing"
)

// TestModuleResolverConcurrentInstall is the regression test for the
// package-level resolver map: a World and its Machines are owned by
// one goroutine each, but the resolver registry is shared by ALL
// worlds in the process, so independent harnesses running
// concurrently (parallel tests, pipeline snap factories) used to
// race on it (caught by -race).
func TestModuleResolverConcurrentInstall(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewWorld(1)
			m := w.NewMachine("host", 0)
			for j := 0; j < 50; j++ {
				p := m.NewProcess("proc", nil)
				p.SetModuleResolver(func(name string) *LoadedModule { return nil })
			}
		}()
	}
	wg.Wait()
}
