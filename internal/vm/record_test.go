package vm

import (
	"testing"

	"traceback/internal/isa"
)

// testRecorder captures every Recorder callback as a tagged string
// sequence, preserving arrival order across callback kinds.
type testRecorder struct {
	quanta  int
	signals []struct {
		tid, sig int
		prePC    uint64
	}
	kills   []int // PIDs
	unloads []int // handles
	order   []string
}

func (r *testRecorder) RecordQuantum(m *Machine, t *Thread) {
	r.quanta++
	r.order = append(r.order, "quantum")
}

func (r *testRecorder) RecordSignal(m *Machine, t *Thread, sig int, prePC uint64) {
	r.signals = append(r.signals, struct {
		tid, sig int
		prePC    uint64
	}{t.TID, sig, prePC})
	r.order = append(r.order, "signal")
}

func (r *testRecorder) RecordKill(m *Machine, p *Process) {
	r.kills = append(r.kills, p.PID)
	r.order = append(r.order, "kill")
}

func (r *testRecorder) RecordUnload(p *Process, lm *LoadedModule) {
	r.unloads = append(r.unloads, lm.Handle)
	r.order = append(r.order, "unload")
}

func (r *testRecorder) RecordRPCFault(from *Thread, endpoint uint64, reply bool, f RPCFault) {
	r.order = append(r.order, "rpc-fault")
}

func (r *testRecorder) RecordRPCDeliver(to *Thread, endpoint uint64, from *Thread, payloadLen int) {
	r.order = append(r.order, "rpc-deliver")
}

// quantumInjector fires a callback at a chosen world quantum.
type quantumInjector struct {
	at    uint64
	fired bool
	fn    func(m *Machine)
}

func (in *quantumInjector) AtQuantum(m *Machine) {
	if !in.fired && m.World.Quantum() >= in.at {
		in.fired = true
		in.fn(m)
	}
}

func (in *quantumInjector) AtRPC(*Thread, uint64, bool) RPCFault { return RPCFault{} }

func spinCode() []isa.Instr {
	// Busy loop long enough to span several quanta, then exit.
	return []isa.Instr{
		{Op: isa.MOVI, A: 5, Imm: 0},
		{Op: isa.MOVI, A: 6, Imm: 2000},
		{Op: isa.ADDI, A: 5, B: 5, Imm: 1},
		{Op: isa.BLT, A: 5, B: 6, Imm: 2},
		{Op: isa.MOVI, A: 1, Imm: 0},
		{Op: isa.SYS, Imm: isa.SysExit},
	}
}

// TestInjectorAndRecorderTogether installs both an injector (which
// kills the process mid-run) and a recorder, and asserts the recorder
// observes both the scheduling quanta and the injected kill — with
// the kill arriving after that quantum's checkpoint callback.
func TestInjectorAndRecorderTogether(t *testing.T) {
	p, m := newProc(t, "victim", spinCode())
	rec := &testRecorder{}
	m.World.SetRecorder(rec)
	inj := &quantumInjector{at: 5, fn: func(mm *Machine) { mm.KillProcess(p) }}
	m.World.SetInjector(inj)
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	m.World.Run(1_000_000, func() bool { return p.Exited })
	if !inj.fired {
		t.Fatal("injector never fired")
	}
	if len(rec.kills) != 1 || rec.kills[0] != p.PID {
		t.Fatalf("kills = %v, want [%d]", rec.kills, p.PID)
	}
	if rec.quanta == 0 {
		t.Fatal("no quantum callbacks observed")
	}
	if p.FatalSignal != SigKill {
		t.Fatalf("fatal signal = %d", p.FatalSignal)
	}
	// The injector runs at the top of Step, before thread selection:
	// the kill must precede the (never-reached) quantum callback of
	// its own step, i.e. the order stream ends ...quantum, kill.
	last := rec.order[len(rec.order)-1]
	if last != "kill" {
		t.Fatalf("last observation = %q, want kill", last)
	}
}

// TestRecorderKillMidQuantum kills the process from OnStep — midway
// through an executing slice, not at a quantum boundary — and asserts
// the recorder still observes exactly one kill and the machine winds
// down cleanly.
func TestRecorderKillMidQuantum(t *testing.T) {
	p, m := newProc(t, "midslice", spinCode())
	rec := &testRecorder{}
	m.World.SetRecorder(rec)
	steps := 0
	m.OnStep = func(th *Thread) {
		steps++
		if steps == m.Slice/2+3 { // mid-slice, not a boundary
			m.KillProcess(th.Proc)
		}
	}
	if _, err := p.StartThread(0, 0); err != nil {
		t.Fatal(err)
	}
	m.World.Run(1_000_000, func() bool { return p.Exited })
	if len(rec.kills) != 1 {
		t.Fatalf("kills = %v, want exactly one", rec.kills)
	}
	if !p.Exited || p.FatalSignal != SigKill {
		t.Fatalf("process not killed: exited=%v sig=%d", p.Exited, p.FatalSignal)
	}
	// A dead machine must stop producing quantum records.
	before := rec.quanta
	if m.Step() {
		t.Fatal("machine still runnable after kill")
	}
	if rec.quanta != before {
		t.Fatal("quantum recorded on a dead machine")
	}
	for _, th := range p.Threads {
		if !th.KilledAbruptly {
			t.Errorf("thread %d not marked abruptly killed", th.TID)
		}
	}
}

// TestSignalAndUnloadSameQuantum delivers a signal and unloads a
// module within the same quantum and asserts the recorder sees both,
// in firing order, with the signal's pre-delivery PC (before
// InjectSignal backs it up).
func TestSignalAndUnloadSameQuantum(t *testing.T) {
	p, m := newProc(t, "both", spinCode())
	rec := &testRecorder{}
	m.World.SetRecorder(rec)
	var prePC uint64
	inj := &quantumInjector{at: 4, fn: func(mm *Machine) {
		lm := p.Modules[0]
		p.Unload(lm)
		th := p.Threads[1]
		prePC = th.PC
		if !mm.InjectSignal(th, SigApp) {
			t.Fatal("signal not delivered")
		}
	}}
	m.World.SetInjector(inj)
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	m.World.Run(1_000_000, func() bool { return p.Exited })
	if !inj.fired {
		t.Fatal("injector never fired")
	}
	if len(rec.unloads) != 1 || rec.unloads[0] != p.Modules[0].Handle {
		t.Fatalf("unloads = %v", rec.unloads)
	}
	if len(rec.signals) != 1 {
		t.Fatalf("signals = %v", rec.signals)
	}
	s := rec.signals[0]
	if s.sig != SigApp || s.tid != 1 {
		t.Fatalf("signal = %+v", s)
	}
	if s.prePC != prePC {
		t.Fatalf("recorded prePC %d, want pre-delivery PC %d", s.prePC, prePC)
	}
	// Firing order within the quantum: unload then signal.
	var seq []string
	for _, o := range rec.order {
		if o == "unload" || o == "signal" {
			seq = append(seq, o)
		}
	}
	if len(seq) != 2 || seq[0] != "unload" || seq[1] != "signal" {
		t.Fatalf("order = %v, want [unload signal]", seq)
	}
}

// TestWorldQuantumCounter: the counter advances once per Step across
// all machines and is untouched by recorder presence.
func TestWorldQuantumCounter(t *testing.T) {
	p, m := newProc(t, "count", spinCode())
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	before := m.World.Quantum()
	if before != 0 {
		t.Fatalf("fresh world quantum = %d", before)
	}
	m.Step()
	m.Step()
	if q := m.World.Quantum(); q != 2 {
		t.Fatalf("quantum after 2 steps = %d", q)
	}
}
