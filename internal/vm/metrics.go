package vm

import (
	"traceback/internal/isa"
	"traceback/internal/telemetry"
)

// machMetrics is the machine's optional self-telemetry. It is
// host-side only: counters observe syscalls, signals, module loads,
// and thread lifecycle without adding a single cycle to the machine
// clock, so enabling telemetry cannot change any Table 1/2/3 ratio.
// When nil (the default), every instrumentation point is one branch.
type machMetrics struct {
	syscalls [sysClassCount]*telemetry.Counter
	signals  *telemetry.Counter
	modLoads *telemetry.Counter
	modUnl   *telemetry.Counter
	threads  *telemetry.Counter
	faults   *telemetry.Counter
}

// sysClass buckets syscall numbers for counting; one counter per
// class keeps exposition small and the hot path map-free.
type sysClass int

const (
	sysClassThread sysClass = iota
	sysClassSync
	sysClassIO
	sysClassRPC
	sysClassTB
	sysClassModule
	sysClassOther
	sysClassCount
)

var sysClassNames = [sysClassCount]string{
	"thread", "sync", "io", "rpc", "tb", "module", "other",
}

func classifySyscall(num int) sysClass {
	switch num {
	case isa.SysThreadCreate, isa.SysThreadJoin, isa.SysGetTID, isa.SysKill, isa.SysExit:
		return sysClassThread
	case isa.SysMutexLock, isa.SysMutexUnlock, isa.SysSleep, isa.SysYield:
		return sysClassSync
	case isa.SysWrite, isa.SysPrintInt, isa.SysIORead, isa.SysIOWrite, isa.SysNetSend:
		return sysClassIO
	case isa.SysRPCCall, isa.SysRPCRecv, isa.SysRPCReply:
		return sysClassRPC
	case isa.SysSnap, isa.SysTBWrap:
		return sysClassTB
	case isa.SysLoadModule, isa.SysUnloadModule:
		return sysClassModule
	}
	return sysClassOther
}

// EnableTelemetry attaches a metrics registry to the machine. Metrics
// are registered under the vm_ prefix with get-or-create semantics,
// so several machines sharing one registry aggregate their counters
// (and their cycle gauges sum at exposition). Telemetry never touches
// the machine clock; the paper's cycle ratios are unchanged whether
// it is enabled or not (asserted by TestTelemetryCycleParity).
func (m *Machine) EnableTelemetry(reg *telemetry.Registry) {
	mm := &machMetrics{
		signals:  reg.Counter("vm_signals_total", "signals delivered through the fault path"),
		modLoads: reg.Counter("vm_modules_loaded_total", "modules mapped into processes"),
		modUnl:   reg.Counter("vm_modules_unloaded_total", "modules unloaded"),
		threads:  reg.Counter("vm_threads_started_total", "threads created"),
		faults:   reg.Counter("vm_faults_total", "faults raised (before handler dispatch)"),
	}
	for c := sysClass(0); c < sysClassCount; c++ {
		mm.syscalls[c] = reg.Counter(
			"vm_syscalls_"+sysClassNames[c]+"_total",
			"syscalls dispatched, class "+sysClassNames[c])
	}
	reg.GaugeFunc("vm_cycles", "machine clock (cycles)", func() int64 { return int64(m.clock) })
	reg.GaugeFunc("vm_processes", "processes ever created on the machine", func() int64 { return int64(len(m.procs)) })
	m.met = mm
}
