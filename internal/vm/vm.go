// Package vm implements the synthetic platform TraceBack runs on: a
// deterministic, cycle-accounted machine with processes, preemptive
// round-robin threads, thread-local storage, signals, mutexes,
// dynamic module loading, abrupt termination, and cross-process /
// cross-machine RPC. It stands in for the paper's Windows/Unix + IA32
// substrate; see DESIGN.md §1 for the substitution argument.
package vm

import (
	"fmt"
	"math/rand"

	"traceback/internal/isa"
	"traceback/internal/module"
)

// Signal numbers (Unix-flavored).
const (
	SigInt  = 2  // Control-C
	SigIll  = 4  // bad opcode / wild jump
	SigKill = 9  // abrupt termination: no handler, no runtime notification
	SigSegv = 11 // bad memory access
	SigFpe  = 8  // divide by zero
	SigArg  = 33 // bad syscall argument (e.g. negative sleep)
	SigApp  = 30 // application-raised
)

// SignalName returns a printable name.
func SignalName(sig int) string {
	switch sig {
	case SigInt:
		return "SIGINT"
	case SigIll:
		return "SIGILL"
	case SigKill:
		return "SIGKILL"
	case SigSegv:
		return "SIGSEGV"
	case SigFpe:
		return "SIGFPE"
	case SigArg:
		return "SIGARG"
	case SigApp:
		return "SIGAPP"
	}
	return fmt.Sprintf("SIG(%d)", sig)
}

// Special return addresses outside any code range.
const (
	threadExitMarker    = uint64(1) << 40
	handlerReturnMarker = uint64(1)<<40 + 1
)

// Cycle costs for simulated devices. I/O dominance is what gives the
// web-server workloads their low instrumentation overhead (Table 2).
const (
	CostDiskPerKB       = 6000
	CostDiskBase        = 4000
	CostNetPerKB        = 1500
	CostNetBase         = 1000
	CrossMachineLatency = 20000
)

// ThreadState enumerates scheduler states.
type ThreadState uint8

const (
	Runnable ThreadState = iota
	Sleeping
	BlockedMutex
	BlockedJoin
	BlockedRPC
	Exited
)

func (s ThreadState) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Sleeping:
		return "sleeping"
	case BlockedMutex:
		return "blocked-mutex"
	case BlockedJoin:
		return "blocked-join"
	case BlockedRPC:
		return "blocked-rpc"
	case Exited:
		return "exited"
	}
	return "?"
}

// Thread is one thread of control in a process.
type Thread struct {
	Proc  *Process
	TID   int
	Regs  [isa.NumRegs]uint64
	PC    uint64
	TLS   [isa.NumTLSSlots]uint64
	State ThreadState

	StartArg  uint64
	ExitValue uint64
	// KilledAbruptly is set when the thread died without runtime
	// notification (kill -9); its TLS contents are considered lost.
	KilledAbruptly bool

	wakeAt      uint64
	blockedAddr uint32 // mutex address when BlockedMutex
	joinTID     int
	joinWaiters []*Thread

	// Signal-handler context stack.
	sigCtx []sigContext

	// rpc state
	rpcReply   []byte
	rpcReplyAt uint32
	rpcExt     []byte
	pendingReq *rpcMessage

	// stack bounds for diagnostics
	stackLo, stackHi uint32
}

type sigContext struct {
	regs [isa.NumRegs]uint64
	pc   uint64
	sig  int
}

// LoadedModule records one load of a module into a process.
type LoadedModule struct {
	Mod      *module.Module
	CodeBase uint32 // first instruction index in the process code space
	DataBase uint32 // data segment base address
	// DAGBase is the range base actually in use after any load-time
	// rebasing by the runtime.
	DAGBase  uint32
	Unloaded bool
	Handle   int
}

// Hooks is the interface the TraceBack runtime implements to observe
// and steer the process (the analog of the injected runtime library
// plus its OS hooks, paper §3.7). NullHooks is used when running
// uninstrumented.
type Hooks interface {
	// OnModuleLoad fires after code/data are mapped, before any of
	// the module's code runs. The runtime performs DAG rebasing here.
	OnModuleLoad(p *Process, lm *LoadedModule)
	OnModuleUnload(p *Process, lm *LoadedModule)
	// OnThreadStart fires before the thread's first instruction.
	OnThreadStart(t *Thread)
	// OnThreadExit fires at orderly termination (not kill -9).
	OnThreadExit(t *Thread)
	// OnBufferWrap services the probe helper (SysTBWrap); it returns
	// the address of the slot the new record should be written to and
	// must update TLS itself.
	OnBufferWrap(t *Thread) uint64
	// OnException fires first-chance, before any handler runs.
	OnException(t *Thread, sig int, addr uint64)
	// OnSignalReturn fires when a handler returns to interrupted code.
	OnSignalReturn(t *Thread)
	// OnSnapRequest services the snap API (SysSnap).
	OnSnapRequest(t *Thread, reason string)
	// OnSyscall fires for every syscall; the runtime inserts
	// timestamp records at synchronization points here (paper §3.5).
	OnSyscall(t *Thread, num int)
	// OnRPCSend returns the trace payload extension to attach to an
	// outgoing call (paper §5.1); OnRPCRecv consumes the peer's.
	OnRPCSend(t *Thread, reply bool) []byte
	OnRPCRecv(t *Thread, ext []byte, reply bool)
	// OnProcessExit fires at orderly or faulting exit (sig == 0 for
	// orderly); not at kill -9.
	OnProcessExit(p *Process, sig int)
}

// NullHooks is a no-op Hooks for uninstrumented runs.
type NullHooks struct{}

func (NullHooks) OnModuleLoad(*Process, *LoadedModule)   {}
func (NullHooks) OnModuleUnload(*Process, *LoadedModule) {}
func (NullHooks) OnThreadStart(*Thread)                  {}
func (NullHooks) OnThreadExit(*Thread)                   {}
func (NullHooks) OnBufferWrap(*Thread) uint64            { return 0 }
func (NullHooks) OnException(*Thread, int, uint64)       {}
func (NullHooks) OnSignalReturn(*Thread)                 {}
func (NullHooks) OnSnapRequest(*Thread, string)          {}
func (NullHooks) OnSyscall(*Thread, int)                 {}
func (NullHooks) OnRPCSend(*Thread, bool) []byte         { return nil }
func (NullHooks) OnRPCRecv(*Thread, []byte, bool)        {}
func (NullHooks) OnProcessExit(*Process, int)            {}

var _ Hooks = NullHooks{}

// Process is an address space plus threads.
type Process struct {
	Machine *Machine
	PID     int
	Name    string

	Mem  []byte
	brk  uint32 // bump allocator
	Code []isa.Instr

	Modules []*LoadedModule
	Threads map[int]*Thread
	nextTID int

	Hooks Hooks

	// Signal handlers: signal -> handler code address (0 = default).
	Handlers map[int]uint64

	mutexes map[uint32]*mutexState

	Exited   bool
	ExitCode int
	// FatalSignal records the signal that terminated the process
	// abnormally (0 for orderly exit).
	FatalSignal int

	// Console output (SysWrite fd 1/2).
	Out []byte

	// Instruction budget accounting for benchmarks.
	Cycles uint64

	// lastProgress is the machine clock the last time one of this
	// process's threads executed an instruction; the service process
	// uses it for hang detection.
	lastProgress uint64

	nextHandle int
}

type mutexState struct {
	owner   *Thread
	waiters []*Thread
}

// Machine hosts processes and a clock.
type Machine struct {
	World *World
	Name  string
	// ClockSkew offsets reported timestamps (distributed tracing
	// tests clock-skew compensation with this).
	ClockSkew int64
	clock     uint64
	procs     []*Process
	nextPID   int
	rng       *rand.Rand

	// Slice is the scheduling quantum in instructions.
	Slice int

	// OnStep, when set, is invoked before every instruction executes
	// (test oracle hook; nil in normal operation).
	OnStep func(t *Thread)

	// rrIndex implements round-robin across the machine's threads.
	rrIndex int

	// met is the machine's optional self-telemetry (EnableTelemetry);
	// nil means every instrumentation point is a single branch.
	met *machMetrics
}

// Clock returns the machine's raw cycle counter.
func (m *Machine) Clock() uint64 { return m.clock }

// AddCycles charges cycles to the machine clock (used by co-hosted
// runtimes such as the managed VM).
func (m *Machine) AddCycles(c uint64) { m.clock += c }

// SetClock advances the clock directly (idle-skip for co-hosted
// runtimes). It never moves the clock backward.
func (m *Machine) SetClock(c uint64) {
	if c > m.clock {
		m.clock = c
	}
}

// Timestamp returns the skewed wall-clock analog (RDTSC / gethrtime).
func (m *Machine) Timestamp() uint64 { return uint64(int64(m.clock) + m.ClockSkew) }

// Rand returns the machine's deterministic PRNG.
func (m *Machine) Rand() *rand.Rand { return m.rng }

// Procs returns the machine's processes (including exited ones, whose
// memory remains readable for post-mortem snaps).
func (m *Machine) Procs() []*Process { return m.procs }

// World is a set of machines connected by a network.
type World struct {
	Machines  []*Machine
	endpoints map[uint64]*endpoint
	seed      int64
	// injector, when set, is consulted at scheduling quanta and RPC
	// transport points (see inject.go); nil in normal operation.
	injector Injector
	// recorder, when set, observes the same nondeterminism sites the
	// injector may perturb (see record.go); nil in normal operation.
	recorder Recorder
	// quantum counts scheduling quanta world-globally (see Quantum).
	quantum uint64
}

type endpoint struct {
	proc    *Process
	queue   []*rpcMessage
	waiters []*Thread
}

type rpcMessage struct {
	from    *Thread
	payload []byte
	ext     []byte
	// deliverAt delays cross-machine messages.
	deliverAt uint64
}

// NewWorld creates an empty world with a deterministic seed.
func NewWorld(seed int64) *World {
	return &World{endpoints: map[uint64]*endpoint{}, seed: seed}
}

// NewMachine adds a machine.
func (w *World) NewMachine(name string, skew int64) *Machine {
	m := &Machine{
		World:     w,
		Name:      name,
		ClockSkew: skew,
		rng:       rand.New(rand.NewSource(w.seed + int64(len(w.Machines)) + 1)),
		Slice:     64,
	}
	w.Machines = append(w.Machines, m)
	return m
}

// DefaultMemSize is the per-process address-space size.
const DefaultMemSize = 16 << 20

// NewProcess creates a process with hooks (use NullHooks for
// uninstrumented runs). The low page is left unmapped so that null
// dereferences fault.
func (m *Machine) NewProcess(name string, hooks Hooks) *Process {
	if hooks == nil {
		hooks = NullHooks{}
	}
	m.nextPID++
	p := &Process{
		Machine:  m,
		PID:      m.nextPID,
		Name:     name,
		Mem:      make([]byte, DefaultMemSize),
		brk:      4096,
		Threads:  map[int]*Thread{},
		Hooks:    hooks,
		Handlers: map[int]uint64{},
		mutexes:  map[uint32]*mutexState{},
	}
	m.procs = append(m.procs, p)
	return p
}

// AllocRegion carves size bytes out of the address space (the analog
// of mapping a file or VirtualAlloc). Returns 0 on exhaustion.
func (p *Process) AllocRegion(size uint32) uint32 {
	size = (size + 15) &^ 15
	if uint64(p.brk)+uint64(size) > uint64(len(p.Mem)) {
		return 0
	}
	a := p.brk
	p.brk += size
	return a
}

// Load maps a module into the process: code is appended to the code
// space with branch targets rebased, GADDR/LDFN are resolved, CALX
// import references are bound, and the runtime hook runs (performing
// DAG rebasing for instrumented modules).
func (p *Process) Load(mod *module.Module) (*LoadedModule, error) {
	if err := mod.Validate(); err != nil {
		return nil, err
	}
	codeBase := uint32(len(p.Code))
	dataSize := uint32(len(mod.Data)) + mod.BSS
	var dataBase uint32
	if dataSize > 0 {
		dataBase = p.AllocRegion(dataSize)
		if dataBase == 0 {
			return nil, fmt.Errorf("vm: %s: out of memory loading %s", p.Name, mod.Name)
		}
		copy(p.Mem[dataBase:], mod.Data)
	}

	code := make([]isa.Instr, len(mod.Code))
	copy(code, mod.Code)
	for i := range code {
		in := &code[i]
		switch {
		case in.Op.HasCodeTarget():
			in.Imm += int32(codeBase)
		case in.Op == isa.GADDR:
			*in = isa.Instr{Op: isa.MOVI, A: in.A, Imm: int32(dataBase) + in.Imm}
		case in.Op == isa.LDFN:
			f := mod.Funcs[in.Imm]
			*in = isa.Instr{Op: isa.MOVI, A: in.A, Imm: int32(codeBase + f.Entry)}
		case in.Op == isa.CALX:
			im := mod.Imports[in.Imm]
			addr, err := p.resolveImport(im)
			if err != nil {
				return nil, err
			}
			*in = isa.Instr{Op: isa.CALL, Imm: int32(addr)}
		}
	}
	p.Code = append(p.Code, code...)

	p.nextHandle++
	lm := &LoadedModule{
		Mod:      mod,
		CodeBase: codeBase,
		DataBase: dataBase,
		DAGBase:  mod.DAGBase,
		Handle:   p.nextHandle,
	}
	p.Modules = append(p.Modules, lm)
	if m := p.Machine.met; m != nil {
		m.modLoads.Inc()
	}
	p.Hooks.OnModuleLoad(p, lm)
	return lm, nil
}

func (p *Process) resolveImport(im module.Import) (uint32, error) {
	for _, lm := range p.Modules {
		if lm.Unloaded {
			continue
		}
		if im.Module != "" && lm.Mod.Name != im.Module {
			continue
		}
		if f, ok := lm.Mod.FuncByName(im.Name); ok && f.Exported {
			return lm.CodeBase + f.Entry, nil
		}
	}
	return 0, fmt.Errorf("vm: %s: unresolved import %s!%s", p.Name, im.Module, im.Name)
}

// Unload marks a module unloaded (its code slots remain reserved, as
// with a real unmapped DLL whose address range is retired).
func (p *Process) Unload(lm *LoadedModule) {
	if lm.Unloaded {
		return
	}
	lm.Unloaded = true
	if w := p.Machine.World; w != nil && w.recorder != nil {
		w.recorder.RecordUnload(p, lm)
	}
	if m := p.Machine.met; m != nil {
		m.modUnl.Inc()
	}
	p.Hooks.OnModuleUnload(p, lm)
}

// ModuleAt returns the loaded module containing absolute code address a.
func (p *Process) ModuleAt(a uint64) (*LoadedModule, bool) {
	for _, lm := range p.Modules {
		if a >= uint64(lm.CodeBase) && a < uint64(lm.CodeBase)+uint64(len(lm.Mod.Code)) {
			return lm, true
		}
	}
	return nil, false
}

// DefaultStackSize is the per-thread stack size.
const DefaultStackSize = 64 << 10

// StartThread creates a runnable thread at the absolute code address
// entry with the given start argument.
func (p *Process) StartThread(entry uint64, arg uint64) (*Thread, error) {
	if entry >= uint64(len(p.Code)) {
		return nil, fmt.Errorf("vm: %s: thread entry %d outside code", p.Name, entry)
	}
	stack := p.AllocRegion(DefaultStackSize)
	if stack == 0 {
		return nil, fmt.Errorf("vm: %s: out of memory for thread stack", p.Name)
	}
	p.nextTID++
	t := &Thread{
		Proc:     p,
		TID:      p.nextTID,
		PC:       entry,
		State:    Runnable,
		StartArg: arg,
		stackLo:  stack,
		stackHi:  stack + DefaultStackSize,
	}
	t.Regs[isa.SP] = uint64(stack + DefaultStackSize)
	t.Regs[isa.A1] = arg
	// The thread "returns" out of its entry function into the exit
	// marker, terminating it cleanly.
	t.push(threadExitMarker)
	p.Threads[t.TID] = t
	if m := p.Machine.met; m != nil {
		m.threads.Inc()
	}
	p.Hooks.OnThreadStart(t)
	return t, nil
}

// StartMain loads nothing but starts the exported function named
// main (or the module's first exported function) of the most
// recently loaded module.
func (p *Process) StartMain(arg uint64) (*Thread, error) {
	if len(p.Modules) == 0 {
		return nil, fmt.Errorf("vm: %s: no modules loaded", p.Name)
	}
	lm := p.Modules[len(p.Modules)-1]
	f, ok := lm.Mod.FuncByName("main")
	if !ok {
		for _, fn := range lm.Mod.Funcs {
			if fn.Exported {
				f, ok = fn, true
				break
			}
		}
	}
	if !ok {
		return nil, fmt.Errorf("vm: %s: module %s has no main", p.Name, lm.Mod.Name)
	}
	return p.StartThread(uint64(lm.CodeBase+f.Entry), arg)
}

// Alive reports whether the process has any non-exited thread.
func (p *Process) Alive() bool {
	if p.Exited {
		return false
	}
	for _, t := range p.Threads {
		if t.State != Exited {
			return true
		}
	}
	return false
}

// LastProgress returns the machine clock at the process's last
// executed instruction (hang detection input).
func (p *Process) LastProgress() uint64 { return p.lastProgress }

// OutString returns captured console output.
func (p *Process) OutString() string { return string(p.Out) }
