package vm

import (
	"encoding/binary"

	"traceback/internal/isa"
)

// RPC transport. Endpoints are world-global integer IDs. Requests and
// replies carry an application payload plus an opaque trace extension
// the runtime hooks attach and consume — the mechanism the paper's
// §5.1 uses to stitch physical threads into logical threads.
//
// Wire format written into the callee/caller buffers:
//
//	[4 bytes app payload length][app payload]
//
// The extension travels out of band (as COM payload extensions do)
// and is handed to the peer runtime's OnRPCRecv.

// RegisterEndpoint binds an endpoint ID to a serving process. Threads
// of that process receive requests with SysRPCRecv.
func (w *World) RegisterEndpoint(id uint64, p *Process) {
	w.endpoints[id] = &endpoint{proc: p}
}

// deliverDue is a hook point for delayed messages; with the current
// queue design messages become visible when the receiving machine's
// clock passes deliverAt, enforced in rpcRecv.
func (m *Machine) deliverDue() {}

// rpcCall implements SysRPCCall: r1=endpoint, r2=req addr, r3=req
// len, r4=resp addr (capacity prefix convention: first 4 bytes at
// resp addr give the caller's buffer capacity). The calling thread
// blocks until the reply arrives. r0 = reply status (the callee's r2
// at reply time; nonzero means a server-side fault was converted to
// an error, the DCOM RPC_E_SERVERFAULT analog).
func (m *Machine) rpcCall(t *Thread) (stepResult, int) {
	p := t.Proc
	r := &t.Regs
	ep := m.World.endpoints[r[isa.A1]]
	if ep == nil {
		r[isa.RV] = ^uint64(0)
		return stepOK, 0
	}
	payload, ok := p.ReadBytes(r[isa.A2], r[isa.A3])
	if !ok {
		return stepFault, SigSegv
	}
	ext := p.Hooks.OnRPCSend(t, false)
	// deliverAt is on the RECEIVER's clock so its recv loop can
	// compare locally; cross-machine calls pay latency and send cost.
	deliverAt := ep.proc.Machine.clock
	if ep.proc.Machine != m {
		deliverAt += CrossMachineLatency
		m.clock += CostNetBase + uint64(len(payload))*CostNetPerKB/1024
	}
	msg := &rpcMessage{from: t, payload: payload, ext: ext, deliverAt: deliverAt}
	// Transport fault injection: the sender has already committed its
	// SYNC record (it believes the call went out), so drops, delays,
	// and duplications perturb only what the network delivers. The
	// recorder sees every consult (including the zero verdict) so its
	// message ordinals align with a replaying injector's.
	var f RPCFault
	if inj := m.World.injector; inj != nil {
		f = inj.AtRPC(t, r[isa.A1], false)
	}
	if rec := m.World.recorder; rec != nil {
		rec.RecordRPCFault(t, r[isa.A1], false, f)
	}
	if f.Drop {
		t.State = BlockedRPC
		t.rpcReplyAt = uint32(r[isa.A4])
		return stepBlocked, 0
	}
	msg.deliverAt += f.Delay
	if f.Duplicate {
		dup := *msg
		ep.queue = append(ep.queue, &dup)
	}
	ep.queue = append(ep.queue, msg)
	// Wake waiting receivers; they re-execute their recv.
	var keep []*Thread
	for _, wt := range ep.waiters {
		if wt.State == BlockedRPC {
			wt.State = Runnable
		}
	}
	ep.waiters = keep
	t.State = BlockedRPC
	t.rpcReplyAt = uint32(r[isa.A4])
	return stepBlocked, 0
}

// rpcRecv implements SysRPCRecv: r1=endpoint, r2=buf addr, r3=cap.
// Blocks until a request is available; returns request length in r0
// and binds the request to the receiving thread for rpcReply.
func (m *Machine) rpcRecv(t *Thread) (stepResult, int) {
	p := t.Proc
	r := &t.Regs
	ep := m.World.endpoints[r[isa.A1]]
	if ep == nil || ep.proc != p {
		r[isa.RV] = ^uint64(0)
		return stepOK, 0
	}
	earliest := uint64(0)
	inFlight := false
	for i, msg := range ep.queue {
		if msg.deliverAt > m.clock {
			if !inFlight || msg.deliverAt < earliest {
				earliest, inFlight = msg.deliverAt, true
			}
			continue
		}
		ep.queue = append(ep.queue[:i], ep.queue[i+1:]...)
		if rec := m.World.recorder; rec != nil {
			rec.RecordRPCDeliver(t, r[isa.A1], msg.from, len(msg.payload))
		}
		n := uint64(len(msg.payload))
		if n > r[isa.A3] {
			n = r[isa.A3]
		}
		if !p.WriteBytes(r[isa.A2], msg.payload[:n]) {
			return stepFault, SigSegv
		}
		p.Hooks.OnRPCRecv(t, msg.ext, false)
		t.pendingReq = msg
		r[isa.RV] = n
		return stepOK, 0
	}
	if inFlight {
		// A message is on the wire: doze until it lands, then retry.
		t.State = Sleeping
		t.wakeAt = earliest
		return stepRetry, 0
	}
	// No request yet: block until a caller arrives, then retry.
	ep.waiters = append(ep.waiters, t)
	t.State = BlockedRPC
	return stepRetry, 0
}

// rpcReply implements SysRPCReply: r1=endpoint, r2=status, r3=resp
// addr, r4=resp len. Copies the response into the caller's buffer,
// attaches the runtime's reply extension, and unblocks the caller.
func (m *Machine) rpcReply(t *Thread) (stepResult, int) {
	p := t.Proc
	r := &t.Regs
	msg := t.pendingReq
	if msg == nil {
		r[isa.RV] = ^uint64(0)
		return stepOK, 0
	}
	t.pendingReq = nil
	resp, ok := p.ReadBytes(r[isa.A3], r[isa.A4])
	if !ok {
		return stepFault, SigSegv
	}
	ext := p.Hooks.OnRPCSend(t, true)
	// Reply-side drop: the server believes it replied (SYNC written,
	// status 0) but the caller never wakes — the half-open failure a
	// hang snap has to diagnose.
	var f RPCFault
	if inj := m.World.injector; inj != nil {
		f = inj.AtRPC(t, r[isa.A1], true)
	}
	if rec := m.World.recorder; rec != nil {
		rec.RecordRPCFault(t, r[isa.A1], true, f)
	}
	if f.Drop {
		r[isa.RV] = 0
		return stepOK, 0
	}

	caller := msg.from
	callerProc := caller.Proc
	if caller.State == BlockedRPC && !callerProc.Exited {
		// Length-prefixed copy into the caller's response buffer.
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(resp)))
		addr := uint64(caller.rpcReplyAt)
		if callerProc.WriteBytes(addr, lenBuf[:]) && callerProc.WriteBytes(addr+4, resp) {
			caller.Regs[isa.RV] = r[isa.A2] // status
		} else {
			caller.Regs[isa.RV] = ^uint64(0)
		}
		callerProc.Hooks.OnRPCRecv(caller, ext, true)
		caller.State = Runnable
	}
	r[isa.RV] = 0
	return stepOK, 0
}

// ReplyToFault lets the runtime complete an RPC on behalf of a thread
// that faulted while serving a request: the caller is unblocked with
// a fault status instead of hanging (the server's catch → client
// RPC_E_SERVERFAULT path of Figure 6).
func ReplyToFault(t *Thread, status uint64) {
	msg := t.pendingReq
	if msg == nil {
		return
	}
	t.pendingReq = nil
	caller := msg.from
	if caller.State == BlockedRPC && !caller.Proc.Exited {
		var lenBuf [4]byte
		caller.Proc.WriteBytes(uint64(caller.rpcReplyAt), lenBuf[:])
		caller.Regs[isa.RV] = status
		ext := t.Proc.Hooks.OnRPCSend(t, true)
		caller.Proc.Hooks.OnRPCRecv(caller, ext, true)
		caller.State = Runnable
	}
}
