package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one flight-recorder entry: a notable, rare occurrence
// (buffer wrap, dead-thread scavenge, bad-DAG record, snap trigger,
// desperation-buffer use, heartbeat miss, RPC sync). Clock is the
// producer's clock — the deterministic machine clock for VM-adjacent
// layers — so dumps are reproducible run to run.
type Event struct {
	Seq    uint64 `json:"seq"`
	Clock  uint64 `json:"clock"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Recorder is a bounded ring of the last N events. Recording is
// mutex-guarded (events are rare by contract — do not put one on a
// per-instruction path); sequence numbers are assigned under the same
// lock so they are strictly monotone and dense.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	cap   int
	total uint64
}

// NewRecorder creates a recorder retaining the last n events
// (minimum 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{ring: make([]Event, 0, n), cap: n}
}

// Record appends an event, evicting the oldest when full.
func (r *Recorder) Record(clock uint64, kind, detail string) {
	r.mu.Lock()
	e := Event{Seq: r.total, Clock: clock, Kind: kind, Detail: detail}
	r.total++
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, e)
	} else {
		r.ring[int(e.Seq)%r.cap] = e
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if r.total <= uint64(r.cap) {
		return append(out, r.ring...)
	}
	start := int(r.total) % r.cap
	out = append(out, r.ring[start:]...)
	return append(out, r.ring[:start]...)
}

// Total returns how many events were ever recorded.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events were evicted by the ring bound.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(r.cap) {
		return 0
	}
	return r.total - uint64(r.cap)
}

// EventDump is the serialized form of a flight recorder — what
// `tbrun -events` writes and `tbdump -events` renders.
type EventDump struct {
	Total   uint64  `json:"total"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// Dump snapshots the recorder.
func (r *Recorder) Dump() EventDump {
	return EventDump{Total: r.Total(), Dropped: r.Dropped(), Events: r.Events()}
}

// WriteJSON writes the dump as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump())
}

// ReadEventDump parses a dump written by WriteJSON.
func ReadEventDump(r io.Reader) (*EventDump, error) {
	var d EventDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}
