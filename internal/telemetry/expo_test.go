package telemetry

import (
	"bytes"
	"testing"
)

// golden registry used by both exposition tests.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("tbrt_wraps_total", "trace buffer wraps").Add(3)
	r.Gauge("tbrt_buffers_free", "free main buffers").Set(7)
	r.GaugeFunc("vm_cycles", "machine clock", func() int64 { return 42 })
	h := r.Histogram("recon_snap_nanos", "per-snap reconstruction latency", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	rec := r.Recorder(4)
	rec.Record(9, "snap", "exception SIGSEGV")
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP recon_snap_nanos per-snap reconstruction latency
# TYPE recon_snap_nanos histogram
recon_snap_nanos_bucket{le="10"} 1
recon_snap_nanos_bucket{le="100"} 2
recon_snap_nanos_bucket{le="+Inf"} 3
recon_snap_nanos_sum 555
recon_snap_nanos_count 3
# HELP tbrt_buffers_free free main buffers
# TYPE tbrt_buffers_free gauge
tbrt_buffers_free 7
# HELP tbrt_wraps_total trace buffer wraps
# TYPE tbrt_wraps_total counter
tbrt_wraps_total 3
# HELP vm_cycles machine clock
# TYPE vm_cycles gauge
vm_cycles 42
`
	if got := buf.String(); got != want {
		t.Errorf("prometheus exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": {
    "tbrt_wraps_total": 3
  },
  "gauges": {
    "tbrt_buffers_free": 7,
    "vm_cycles": 42
  },
  "histograms": {
    "recon_snap_nanos": {
      "bounds": [
        10,
        100
      ],
      "counts": [
        1,
        1,
        1
      ],
      "sum": 555,
      "count": 3,
      "p50": 100,
      "p95": 100,
      "p99": 100
    }
  },
  "events": {
    "total": 1,
    "dropped": 0,
    "events": [
      {
        "seq": 0,
        "clock": 9,
        "kind": "snap",
        "detail": "exception SIGSEGV"
      }
    ]
  }
}
`
	if got := buf.String(); got != want {
		t.Errorf("json exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionDeterministic: two writes of the same registry are
// byte-identical (map iteration must not leak into output order).
func TestExpositionDeterministic(t *testing.T) {
	r := goldenRegistry()
	for _, write := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return r.WritePrometheus(b) },
		func(b *bytes.Buffer) error { return r.WriteJSON(b) },
	} {
		var a, b bytes.Buffer
		if err := write(&a); err != nil {
			t.Fatal(err)
		}
		if err := write(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatal("exposition not deterministic across writes")
		}
	}
}
