package telemetry

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestRecorderWrapProperty: for random capacities and event volumes,
// the recorder retains exactly the last min(total, cap) events, in
// order, with strictly monotone dense sequence numbers, and reports
// the drop count exactly.
func TestRecorderWrapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		capN := 1 + rng.Intn(64)
		total := rng.Intn(4 * capN)
		r := NewRecorder(capN)
		for i := 0; i < total; i++ {
			r.Record(uint64(1000+i), "k", fmt.Sprintf("e%d", i))
		}
		evs := r.Events()
		wantLen := total
		if wantLen > capN {
			wantLen = capN
		}
		if len(evs) != wantLen {
			t.Fatalf("trial %d (cap %d, total %d): retained %d, want %d",
				trial, capN, total, len(evs), wantLen)
		}
		wantDropped := uint64(0)
		if total > capN {
			wantDropped = uint64(total - capN)
		}
		if r.Dropped() != wantDropped {
			t.Fatalf("trial %d: dropped = %d, want %d", trial, r.Dropped(), wantDropped)
		}
		if r.Total() != uint64(total) {
			t.Fatalf("trial %d: total = %d, want %d", trial, r.Total(), total)
		}
		for i, e := range evs {
			wantSeq := uint64(total-wantLen) + uint64(i)
			if e.Seq != wantSeq {
				t.Fatalf("trial %d: event %d seq = %d, want %d", trial, i, e.Seq, wantSeq)
			}
			if want := fmt.Sprintf("e%d", wantSeq); e.Detail != want {
				t.Fatalf("trial %d: event %d detail = %q, want %q", trial, i, e.Detail, want)
			}
			if e.Clock != 1000+wantSeq {
				t.Fatalf("trial %d: event %d clock = %d, want %d", trial, i, e.Clock, 1000+wantSeq)
			}
		}
	}
}

func TestRecorderDumpRoundTrip(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(uint64(i), "wrap", "")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadEventDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 5 || d.Dropped != 2 || len(d.Events) != 3 {
		t.Fatalf("dump = total %d dropped %d events %d", d.Total, d.Dropped, len(d.Events))
	}
	if d.Events[0].Seq != 2 || d.Events[2].Seq != 4 {
		t.Fatalf("dump seqs = %d..%d, want 2..4", d.Events[0].Seq, d.Events[2].Seq)
	}
}

func TestRegistrySharedRecorder(t *testing.T) {
	r := New()
	a := r.Recorder(8)
	b := r.Recorder(999) // size of later calls ignored
	if a != b {
		t.Fatal("registry did not share one recorder")
	}
	if r.FlightRecorder() != a {
		t.Fatal("FlightRecorder returned a different recorder")
	}
}
