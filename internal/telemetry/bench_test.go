package telemetry

import "testing"

// BenchmarkCounterInc is the hot-path budget check: instrumenting the
// instrumenter must cost < 10ns per increment so telemetry cannot
// distort the Table 1/2/3 ratios (which are VM-cycle ratios anyway —
// telemetry is host-side and charges zero cycles; this bounds the
// wall-clock side).
func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Load() != uint64(b.N) {
		b.Fatal("lost updates")
	}
}

// BenchmarkCounterIncParallel measures contended increments.
func BenchmarkCounterIncParallel(b *testing.B) {
	r := New()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkHistogramObserve bounds the histogram hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench_nanos", "", DurationBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
