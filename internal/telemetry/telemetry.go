// Package telemetry is the repository's self-measurement spine: a
// stdlib-only metrics registry (atomic counters, gauges, fixed-bucket
// histograms) plus a bounded structured-event ring buffer (the
// "flight recorder"). TraceBack is itself an observability system;
// this package is how the reproduction observes the observer —
// buffer wraps, scavenges, bad-DAG fallbacks, snap latency, pipeline
// stage costs — without charging a single VM cycle (all telemetry is
// host-side) and without allocating on the hot path (an increment is
// one atomic add on a pre-registered counter).
//
// One Registry is meant to be shared across layers: the VM, runtime,
// service, and reconstruction pipeline each register metrics under
// their own name prefix (vm_, tbrt_, svc_, recon_) and the registry
// exposes the union in Prometheus text format or JSON (expo.go).
// Metric handles are resolved once at registration; the hot path
// never touches the registry's lock or maps.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing, concurrency-safe counter.
// The zero value is ready to use; Inc is a single atomic add.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bounds are inclusive
// upper bounds in ascending order; an overflow bucket (+Inf) is
// implicit. Observe is allocation-free: a linear scan over the bounds
// (bucket counts are small by design) and two atomic adds.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// HistogramSnapshot is a plain-value copy of a histogram with
// bucket-resolution quantile estimates.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"` // inclusive upper bounds; +Inf implicit
	Counts []uint64 `json:"counts"` // len(Bounds)+1
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
	P50    uint64   `json:"p50"`
	P95    uint64   `json:"p95"`
	P99    uint64   `json:"p99"`
}

// Snapshot copies the histogram. Concurrent Observes may land between
// bucket reads; counts are monotone so the snapshot is a valid state
// no older than the call.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = h.sum.Load()
	s.P50 = s.quantile(0.50)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// observation — rank ⌈q·N⌉, bucket resolution; the overflow bucket
// reports the last finite bound.
func (s HistogramSnapshot) quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			break
		}
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// DurationBuckets are nanosecond bounds from 1µs to 10s, roughly
// logarithmic — sized for host-side stage latencies (snap writes,
// pipeline stages).
func DurationBuckets() []uint64 {
	return []uint64{
		1_000, 10_000, 100_000, 500_000,
		1_000_000, 5_000_000, 10_000_000, 50_000_000,
		100_000_000, 500_000_000, 1_000_000_000, 10_000_000_000,
	}
}

// SizeBuckets are byte/word-count bounds from 64 to 16M, powers of 4.
func SizeBuckets() []uint64 {
	return []uint64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}
}

// metricKind orders exposition output.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// Registry holds named metrics. Registration (Counter, Gauge,
// Histogram, GaugeFunc) is get-or-create and locked; the returned
// handles are lock-free. A registry also owns at most one flight
// recorder (Recorder).
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]metricKind
	help     map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string][]func() int64
	hists    map[string]*Histogram
	recorder *Recorder
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		kinds:    map[string]metricKind{},
		help:     map[string]string{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string][]func() int64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first sight.
// Registering the same name twice returns the same counter (layers
// sharing a registry aggregate naturally).
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.kinds[name] = kindCounter
	r.help[name] = help
	return c
}

// Gauge returns the named gauge, creating it on first sight.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.kinds[name] = kindGauge
	r.help[name] = help
	return g
}

// GaugeFunc registers a sampled gauge: fn is called at exposition
// time. Multiple registrations under one name sum their samples (two
// machines sharing a registry expose aggregate cycles).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = append(r.gaugeFns[name], fn)
	r.kinds[name] = kindGaugeFunc
	r.help[name] = help
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first sight (later bounds are ignored).
func (r *Registry) Histogram(name, help string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.hists[name] = h
	r.kinds[name] = kindHistogram
	r.help[name] = help
	return h
}

// Recorder returns the registry's flight recorder, creating it with
// capacity n on first call (later sizes are ignored), so layers
// sharing a registry share one event ring.
func (r *Registry) Recorder(n int) *Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.recorder == nil {
		r.recorder = NewRecorder(n)
	}
	return r.recorder
}

// FlightRecorder returns the recorder if one was created, else nil.
func (r *Registry) FlightRecorder() *Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorder
}

// names returns all metric names, sorted, for deterministic exposition.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.kinds))
	for n := range r.kinds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// sampleGaugeFns sums the registered functions for name. Caller holds
// no lock; the fns slice is never mutated after registration ends, but
// we copy under the lock to stay safe against late registration.
func (r *Registry) sampleGaugeFns(fns []func() int64) int64 {
	var v int64
	for _, fn := range fns {
		v += fn()
	}
	return v
}
