package telemetry

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", ""); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
	g := r.Gauge("g", "")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	sampled := int64(10)
	r.GaugeFunc("gf", "", func() int64 { return sampled })
	r.GaugeFunc("gf", "", func() int64 { return 1 })
	r.mu.Lock()
	got := r.sampleGaugeFns(r.gaugeFns["gf"])
	r.mu.Unlock()
	if got != 11 {
		t.Fatalf("summed gauge funcs = %d, want 11", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []uint64{10, 100, 1000})
	for v := uint64(1); v <= 10; v++ {
		h.Observe(v) // all land in le=10
	}
	h.Observe(50)   // le=100
	h.Observe(5000) // +Inf
	s := h.Snapshot()
	if s.Count != 12 || s.Sum != 55+50+5000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	wantCounts := []uint64{10, 1, 0, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.P50 != 10 {
		t.Errorf("p50 = %d, want 10 (rank 6 of 12 lands in le=10)", s.P50)
	}
	// Ranks ⌈0.95·12⌉ = ⌈0.99·12⌉ = 12: the overflow bucket, reported
	// at the last finite bound.
	if s.P95 != 1000 {
		t.Errorf("p95 = %d, want 1000", s.P95)
	}
	if s.P99 != 1000 {
		t.Errorf("p99 = %d, want 1000", s.P99)
	}
}

// TestHistogramConcurrentHammer drives one histogram from 16
// goroutines (run under -race via make test-race): the total count
// and sum must be exact — no lost updates.
func TestHistogramConcurrentHammer(t *testing.T) {
	const goroutines = 16
	const perG = 10_000
	r := New()
	h := r.Histogram("hot", "", DurationBuckets())
	c := r.Counter("hot_total", "")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(g*perG + i))
				c.Inc()
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketTotal uint64
	for _, n := range s.Counts {
		bucketTotal += n
	}
	if bucketTotal != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, goroutines*perG)
	}
	// Sum of 0..N-1.
	n := uint64(goroutines * perG)
	if want := n * (n - 1) / 2; s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	if c.Load() != n {
		t.Fatalf("counter = %d, want %d", c.Load(), n)
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("e", "", []uint64{1})
	s := h.Snapshot()
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Count != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
}
