package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// WritePrometheus writes every metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name so output is
// deterministic and golden-testable. Counters get a _total-as-given
// name (callers follow the convention in their metric names), gauges
// and sampled gauges emit as gauge, histograms emit cumulative
// le-labelled buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names() {
		if h := r.help[name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		var err error
		switch r.kinds[name] {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Load())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Load())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.sampleGaugeFns(r.gaugeFns[name]))
		case kindHistogram:
			err = writePromHistogram(w, name, r.hists[name].Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Counts)-1]
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, cum, name, s.Sum, name, s.Count)
	return err
}

// jsonSnapshot is the JSON exposition shape. Maps marshal with sorted
// keys, so output is deterministic.
type jsonSnapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Events     *EventDump                   `json:"events,omitempty"`
}

// WriteJSON writes every metric — and the flight-recorder dump, when
// a recorder exists — as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	s := jsonSnapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, fns := range r.gaugeFns {
		s.Gauges[name] = r.sampleGaugeFns(fns)
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	rec := r.recorder
	r.mu.Unlock()
	if rec != nil {
		d := rec.Dump()
		s.Events = &d
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
