// Package isa defines the instruction set of the synthetic machine that
// TraceBack instruments: a 64-bit register machine with 16 general
// registers, thread-local-storage access instructions, and the
// store-immediate / or-to-memory forms that TraceBack probes are built
// from. Instructions have a fixed 8-byte encoding so modules can be
// decoded, lifted to a CFG, rewritten, and re-encoded.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Op is an instruction opcode.
type Op uint8

// Opcodes. The comment gives the operand convention:
// A, B, C are register numbers (or small immediates where noted) and
// Imm is the 32-bit immediate / code target / offset.
const (
	NOP Op = iota

	// Data movement.
	MOVI // A = Imm (sign-extended)
	MOV  // A = B

	// Arithmetic and logic: A = B op C.
	ADD
	SUB
	MUL
	DIV // raises ExcDivideByZero when C == 0
	MOD // raises ExcDivideByZero when C == 0
	AND
	OR
	XOR
	SHL
	SHR
	ADDI // A = B + Imm
	NEG  // A = -B
	NOT  // A = ^B

	// Comparisons materializing 0/1: A = (B cmp C).
	CMPEQ
	CMPNE
	CMPLT
	CMPLE

	// Control flow. Code targets in Imm are module-relative
	// instruction indexes, rebased by the loader.
	BEQ  // if A == B goto Imm
	BNE  // if A != B goto Imm
	BLT  // if A < B goto Imm
	BLE  // if A <= B goto Imm
	BGT  // if A > B goto Imm
	BGE  // if A >= B goto Imm
	BEQI // if A == int8(C) goto Imm
	BNEI // if A != int8(C) goto Imm
	JMP  // goto Imm
	JTAB // multiway: goto pc+1+A where 0 <= A < C; the C following instructions are JMPs
	CALL // push pc+1; goto Imm
	CALX // push pc+1; goto import[Imm] (cross-module, resolved at load)
	CALR // push pc+1; goto A (indirect, via register)
	RET  // pop pc

	// Memory. 64-bit unless suffixed 4 (32-bit).
	LD   // A = mem64[B + Imm]
	ST   // mem64[A + Imm] = B
	LD4  // A = mem32[B + Imm] (sign-extended, so the probe helper can compare the sentinel to -1)
	ST4  // mem32[A + Imm] = B
	STI4 // mem32[A] = Imm        (heavyweight-probe DAG write)
	ORM4 // mem32[A] |= Imm       (lightweight-probe bit set)
	PUSH // sp -= 8; mem64[sp] = A
	POP  // A = mem64[sp]; sp += 8

	// Address formation, resolved/rebased by the loader.
	GADDR // A = dataBase + Imm
	LDFN  // A = code address of module function Imm

	// Thread-local storage: slot index in C.
	TLSLD // A = tls[C]
	TLSST // tls[C] = A

	// System call: number in Imm, args in r1..r4, result in r0.
	SYS

	// HLT always raises ExcBadOpcode; used as poison padding.
	HLT

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Register conventions.
const (
	NumRegs = 16
	RV      = 0 // return value; also probe-helper result (buffer pointer)
	A1      = 1 // first argument
	A2      = 2
	A3      = 3
	A4      = 4
	FP      = 14 // frame pointer
	SP      = 15 // stack pointer
)

// CalleeSaved reports whether register r must be preserved across calls.
func CalleeSaved(r int) bool { return (r >= 8 && r <= 13) || r == FP || r == SP }

// TLSSlot is the thread-local slot TraceBack reserves for the trace
// buffer pointer (the analog of FS:0xF00 / TLS index 60 on Windows).
const TLSSlot = 60

// NumTLSSlots is the per-thread TLS array size.
const NumTLSSlots = 64

// Syscall numbers (the Imm operand of SYS). Arguments are passed in
// r1..r4 and the result is returned in r0.
const (
	SysExit         = 1  // exit process (r1 = status)
	SysWrite        = 2  // write (r1 = fd, r2 = addr, r3 = len) -> n
	SysThreadCreate = 3  // (r1 = entry addr, r2 = arg) -> tid
	SysThreadJoin   = 4  // (r1 = tid) -> exit value
	SysSleep        = 5  // (r1 = cycles); r1 < 0 raises ExcBadArgument
	SysMutexLock    = 6  // (r1 = addr)
	SysMutexUnlock  = 7  // (r1 = addr)
	SysClock        = 8  // () -> machine clock (RDTSC analog)
	SysLoadModule   = 9  // (r1 = name addr, r2 = name len) -> module handle
	SysUnloadModule = 10 // (r1 = handle)
	SysRPCCall      = 11 // (r1 = endpoint id, r2 = req addr, r3 = req len, r4 = resp addr) -> status
	SysRaise        = 12 // (r1 = signal)
	SysKill         = 13 // (r1 = tid, r2 = signal); signal 9 terminates abruptly
	SysSignal       = 14 // (r1 = signal, r2 = handler addr) -> previous handler
	SysAlloc        = 15 // (r1 = size) -> addr
	SysSnap         = 16 // (r1 = reason addr, r2 = len): TraceBack snap API
	SysTBWrap       = 17 // buffer_wrap: called only by the probe helper
	SysRand         = 18 // () -> pseudo-random non-negative value
	SysMemcpy       = 19 // (r1 = dst, r2 = src, r3 = len)
	SysGetTID       = 20 // () -> current thread id
	SysYield        = 21 // yield the remainder of the time slice
	SysRPCRecv      = 22 // (r1 = endpoint id, r2 = buf addr, r3 = cap) -> req len
	SysRPCReply     = 23 // (r1 = endpoint id, r2 = resp addr, r3 = len)
	SysIORead       = 24 // (r1 = size): simulated disk read, costs I/O cycles
	SysIOWrite      = 25 // (r1 = size): simulated disk write
	SysNetSend      = 26 // (r1 = size): simulated network transfer
	SysGetArg       = 27 // () -> the thread's start argument
	SysPrintInt     = 28 // (r1 = value): write decimal + newline to the console
)

// SysEndpointArg returns the argument register carrying the RPC
// endpoint id for syscall num. Static analyses (the fleet verifier's
// cross-module RPC passes) use this instead of hard-coding which
// syscalls address endpoints.
func SysEndpointArg(num int) (reg uint8, ok bool) {
	switch num {
	case SysRPCCall, SysRPCRecv, SysRPCReply:
		return A1, true
	}
	return 0, false
}

// SysName returns a printable syscall name.
func SysName(num int) string {
	names := map[int]string{
		SysExit: "exit", SysWrite: "write", SysThreadCreate: "thread-create",
		SysThreadJoin: "join", SysSleep: "sleep", SysMutexLock: "mutex-lock",
		SysMutexUnlock: "mutex-unlock", SysClock: "clock", SysLoadModule: "load-module",
		SysUnloadModule: "unload-module", SysRPCCall: "rpc-call", SysRaise: "raise",
		SysKill: "kill", SysSignal: "signal", SysAlloc: "alloc", SysSnap: "snap",
		SysTBWrap: "buffer-wrap", SysRand: "rand", SysMemcpy: "memcpy",
		SysGetTID: "gettid", SysYield: "yield", SysRPCRecv: "rpc-recv",
		SysRPCReply: "rpc-reply", SysIORead: "io-read", SysIOWrite: "io-write",
		SysNetSend: "net-send", SysGetArg: "getarg", SysPrintInt: "print-int",
	}
	if n, ok := names[num]; ok {
		return n
	}
	return fmt.Sprintf("sys(%d)", num)
}

// Instr is a decoded instruction.
type Instr struct {
	Op      Op
	A, B, C uint8
	Imm     int32
}

// Size is the encoded size of one instruction in bytes.
const Size = 8

// Encode appends the 8-byte encoding of in to dst and returns the result.
func Encode(dst []byte, in Instr) []byte {
	var b [Size]byte
	b[0] = byte(in.Op)
	b[1] = in.A
	b[2] = in.B
	b[3] = in.C
	binary.LittleEndian.PutUint32(b[4:], uint32(in.Imm))
	return append(dst, b[:]...)
}

// Decode decodes one instruction from b.
func Decode(b []byte) (Instr, error) {
	if len(b) < Size {
		return Instr{}, fmt.Errorf("isa: short instruction: %d bytes", len(b))
	}
	in := Instr{
		Op:  Op(b[0]),
		A:   b[1],
		B:   b[2],
		C:   b[3],
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
	if in.Op >= numOps {
		return Instr{}, fmt.Errorf("isa: bad opcode %d", in.Op)
	}
	return in, nil
}

// EncodeAll encodes a code sequence.
func EncodeAll(code []Instr) []byte {
	out := make([]byte, 0, len(code)*Size)
	for _, in := range code {
		out = Encode(out, in)
	}
	return out
}

// DecodeAll decodes a code section.
func DecodeAll(b []byte) ([]Instr, error) {
	if len(b)%Size != 0 {
		return nil, fmt.Errorf("isa: code length %d not a multiple of %d", len(b), Size)
	}
	code := make([]Instr, 0, len(b)/Size)
	for off := 0; off < len(b); off += Size {
		in, err := Decode(b[off:])
		if err != nil {
			return nil, fmt.Errorf("isa: at instruction %d: %w", off/Size, err)
		}
		code = append(code, in)
	}
	return code, nil
}

var opNames = [numOps]string{
	NOP: "nop", MOVI: "movi", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	ADDI: "addi", NEG: "neg", NOT: "not",
	CMPEQ: "cmpeq", CMPNE: "cmpne", CMPLT: "cmplt", CMPLE: "cmple",
	BEQ: "beq", BNE: "bne", BLT: "blt", BLE: "ble", BGT: "bgt", BGE: "bge",
	BEQI: "beqi", BNEI: "bnei",
	JMP: "jmp", JTAB: "jtab", CALL: "call", CALX: "calx", CALR: "calr", RET: "ret",
	LD: "ld", ST: "st", LD4: "ld4", ST4: "st4", STI4: "sti4", ORM4: "orm4",
	PUSH: "push", POP: "pop",
	GADDR: "gaddr", LDFN: "ldfn",
	TLSLD: "tlsld", TLSST: "tlsst",
	SYS: "sys", HLT: "hlt",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case BEQ, BNE, BLT, BLE, BGT, BGE, BEQI, BNEI:
		return true
	}
	return false
}

// IsBlockEnd reports whether op always ends a basic block.
func (op Op) IsBlockEnd() bool {
	switch op {
	case JMP, JTAB, RET, HLT:
		return true
	}
	return op.IsCondBranch() || op.IsCall()
}

// IsCall reports whether op is any form of call.
func (op Op) IsCall() bool { return op == CALL || op == CALX || op == CALR }

// NoReturn reports whether the instruction never falls through
// (process-exit syscall).
func (in Instr) NoReturn() bool { return in.Op == SYS && in.Imm == SysExit }

// HasCodeTarget reports whether the instruction's Imm is a code
// address that the loader (and the instrumenter's relayout pass) must
// rebase.
func (op Op) HasCodeTarget() bool {
	switch op {
	case JMP, CALL:
		return true
	}
	return op.IsCondBranch()
}

// Reads returns the registers read by in. The result is appended to
// regs and returned.
func (in Instr) Reads(regs []uint8) []uint8 {
	switch in.Op {
	case MOV, ADDI, NEG, NOT, LD, LD4, TLSST:
		regs = append(regs, in.B)
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR,
		CMPEQ, CMPNE, CMPLT, CMPLE:
		regs = append(regs, in.B, in.C)
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		regs = append(regs, in.A, in.B)
	case BEQI, BNEI, JTAB, CALR, PUSH, STI4, ORM4:
		regs = append(regs, in.A)
	case ST, ST4:
		regs = append(regs, in.A, in.B)
	case SYS:
		regs = append(regs, A1, A2, A3, A4)
	case POP, RET:
		regs = append(regs, SP)
	}
	switch in.Op {
	case TLSST:
		regs = append(regs, in.A)
	case LD, LD4:
		// base already appended (B)
	case PUSH, CALL, CALX, CALR:
		regs = append(regs, SP)
	}
	return regs
}

// Writes returns the registers written by in, appended to regs.
func (in Instr) Writes(regs []uint8) []uint8 {
	switch in.Op {
	case MOVI, MOV, ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR,
		ADDI, NEG, NOT, CMPEQ, CMPNE, CMPLT, CMPLE,
		LD, LD4, GADDR, LDFN, TLSLD, POP:
		regs = append(regs, in.A)
	case SYS:
		regs = append(regs, RV)
	case CALL, CALX, CALR:
		// A call clobbers all caller-saved registers from the
		// caller's perspective; liveness handles this at the
		// call site, not here. The call itself writes SP.
		regs = append(regs, SP)
	case PUSH, RET:
		regs = append(regs, SP)
	}
	if in.Op == POP {
		regs = append(regs, SP)
	}
	return regs
}

// String renders in as assembly text.
func (in Instr) String() string {
	r := func(n uint8) string { return fmt.Sprintf("r%d", n) }
	switch in.Op {
	case NOP, RET:
		return in.Op.String()
	case HLT:
		return "hlt"
	case MOVI:
		return fmt.Sprintf("movi %s, %d", r(in.A), in.Imm)
	case MOV, NEG, NOT:
		return fmt.Sprintf("%s %s, %s", in.Op, r(in.A), r(in.B))
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR,
		CMPEQ, CMPNE, CMPLT, CMPLE:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.A), r(in.B), r(in.C))
	case ADDI:
		return fmt.Sprintf("addi %s, %s, %d", r(in.A), r(in.B), in.Imm)
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, r(in.A), r(in.B), in.Imm)
	case BEQI, BNEI:
		return fmt.Sprintf("%s %s, %d, @%d", in.Op, r(in.A), int8(in.C), in.Imm)
	case JMP:
		return fmt.Sprintf("jmp @%d", in.Imm)
	case JTAB:
		return fmt.Sprintf("jtab %s, %d", r(in.A), in.C)
	case CALL:
		return fmt.Sprintf("call @%d", in.Imm)
	case CALX:
		return fmt.Sprintf("calx import[%d]", in.Imm)
	case CALR:
		return fmt.Sprintf("calr %s", r(in.A))
	case LD, LD4:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, r(in.A), r(in.B), in.Imm)
	case ST, ST4:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, r(in.A), in.Imm, r(in.B))
	case STI4:
		return fmt.Sprintf("sti4 [%s], %#x", r(in.A), uint32(in.Imm))
	case ORM4:
		return fmt.Sprintf("orm4 [%s], %#x", r(in.A), uint32(in.Imm))
	case PUSH, POP:
		return fmt.Sprintf("%s %s", in.Op, r(in.A))
	case GADDR:
		return fmt.Sprintf("gaddr %s, data%+d", r(in.A), in.Imm)
	case LDFN:
		return fmt.Sprintf("ldfn %s, fn[%d]", r(in.A), in.Imm)
	case TLSLD:
		return fmt.Sprintf("tlsld %s, tls[%d]", r(in.A), in.C)
	case TLSST:
		return fmt.Sprintf("tlsst tls[%d], %s", in.C, r(in.A))
	case SYS:
		return fmt.Sprintf("sys %d", in.Imm)
	}
	return fmt.Sprintf("%s a=%d b=%d c=%d imm=%d", in.Op, in.A, in.B, in.C, in.Imm)
}

// Cost is the cycle cost charged by the VM for executing in.
// Memory references cost extra; TLS access is deliberately slower than
// a register move (the paper notes TLS access is "typically fairly
// slow"); DIV is expensive. Syscall costs are charged by the VM on top
// of the base cost here.
func (in Instr) Cost() int64 {
	switch in.Op {
	case LD, ST, LD4, ST4, STI4, ORM4, PUSH, POP:
		return 2
	case MUL:
		return 3
	case DIV, MOD:
		return 8
	case CALL, CALX, CALR, RET:
		return 2
	case TLSLD, TLSST:
		return 2
	case JTAB:
		return 2
	case SYS:
		return 4
	}
	return 1
}
