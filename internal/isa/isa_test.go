package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: NOP},
		{Op: MOVI, A: 3, Imm: -42},
		{Op: ADD, A: 1, B: 2, C: 3},
		{Op: BEQI, A: 5, C: 0xFF, Imm: 1000},
		{Op: STI4, A: 0, Imm: int32(0x80000000 - 0x7FFFF800)},
		{Op: ORM4, A: 7, Imm: 0x2},
		{Op: TLSLD, A: 6, C: TLSSlot},
		{Op: SYS, Imm: 17},
		{Op: HLT},
	}
	b := EncodeAll(ins)
	if len(b) != len(ins)*Size {
		t.Fatalf("encoded length = %d, want %d", len(b), len(ins)*Size)
	}
	got, err := DecodeAll(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		if got[i] != ins[i] {
			t.Errorf("instr %d: got %+v want %+v", i, got[i], ins[i])
		}
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	b := make([]byte, Size)
	b[0] = byte(numOps)
	if _, err := Decode(b); err == nil {
		t.Fatal("decode of bad opcode succeeded")
	}
}

func TestDecodeRejectsShortInput(t *testing.T) {
	if _, err := Decode(make([]byte, Size-1)); err == nil {
		t.Fatal("decode of short input succeeded")
	}
	if _, err := DecodeAll(make([]byte, Size+1)); err == nil {
		t.Fatal("DecodeAll of misaligned input succeeded")
	}
}

// Property: every well-formed instruction round-trips through the
// binary encoding unchanged.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(op uint8, a, b, c uint8, imm int32) bool {
		in := Instr{Op: Op(op % uint8(numOps)), A: a, B: b, C: c, Imm: imm}
		enc := Encode(nil, in)
		dec, err := Decode(enc)
		return err == nil && dec == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                          Op
		cond, end, call, codeTarget bool
	}{
		{NOP, false, false, false, false},
		{ADD, false, false, false, false},
		{BEQ, true, true, false, true},
		{BNEI, true, true, false, true},
		{JMP, false, true, false, true},
		{JTAB, false, true, false, false},
		{CALL, false, true, true, true},
		{CALX, false, true, true, false},
		{CALR, false, true, true, false},
		{RET, false, true, false, false},
		{HLT, false, true, false, false},
		{SYS, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsCondBranch(); got != c.cond {
			t.Errorf("%v.IsCondBranch() = %v, want %v", c.op, got, c.cond)
		}
		if got := c.op.IsBlockEnd(); got != c.end {
			t.Errorf("%v.IsBlockEnd() = %v, want %v", c.op, got, c.end)
		}
		if got := c.op.IsCall(); got != c.call {
			t.Errorf("%v.IsCall() = %v, want %v", c.op, got, c.call)
		}
		if got := c.op.HasCodeTarget(); got != c.codeTarget {
			t.Errorf("%v.HasCodeTarget() = %v, want %v", c.op, got, c.codeTarget)
		}
	}
}

func TestReadsWrites(t *testing.T) {
	has := func(rs []uint8, r uint8) bool {
		for _, x := range rs {
			if x == r {
				return true
			}
		}
		return false
	}
	add := Instr{Op: ADD, A: 1, B: 2, C: 3}
	if r := add.Reads(nil); !has(r, 2) || !has(r, 3) || has(r, 1) {
		t.Errorf("ADD reads = %v", r)
	}
	if w := add.Writes(nil); !has(w, 1) {
		t.Errorf("ADD writes = %v", w)
	}
	st := Instr{Op: ST, A: 4, B: 5, Imm: 8}
	if r := st.Reads(nil); !has(r, 4) || !has(r, 5) {
		t.Errorf("ST reads = %v", r)
	}
	if w := st.Writes(nil); len(w) != 0 {
		t.Errorf("ST writes = %v, want none", w)
	}
	pop := Instr{Op: POP, A: 9}
	if w := pop.Writes(nil); !has(w, 9) || !has(w, SP) {
		t.Errorf("POP writes = %v", w)
	}
	orm := Instr{Op: ORM4, A: 6, Imm: 4}
	if r := orm.Reads(nil); !has(r, 6) {
		t.Errorf("ORM4 reads = %v", r)
	}
	call := Instr{Op: CALL, Imm: 10}
	if r := call.Reads(nil); !has(r, SP) {
		t.Errorf("CALL reads = %v", r)
	}
}

func TestStringCoversAllOps(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		in := Instr{Op: op, A: 1, B: 2, C: 3, Imm: 4}
		if s := in.String(); s == "" {
			t.Errorf("op %d has empty String()", op)
		}
		if s := op.String(); s == "" || s[0] == 'o' && op != OR {
			// every op has a proper lowercase mnemonic
			if s[:3] == "op(" {
				t.Errorf("op %d has no name", op)
			}
		}
	}
}

func TestCostPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		in := Instr{Op: Op(rng.Intn(NumOps))}
		if in.Cost() <= 0 {
			t.Fatalf("cost of %v = %d", in.Op, in.Cost())
		}
	}
	if (Instr{Op: TLSLD}).Cost() <= (Instr{Op: MOV}).Cost() {
		t.Error("TLS access should cost more than a register move")
	}
	if (Instr{Op: DIV}).Cost() <= (Instr{Op: ADD}).Cost() {
		t.Error("DIV should cost more than ADD")
	}
}

func TestSysName(t *testing.T) {
	if SysName(SysMutexLock) != "mutex-lock" {
		t.Errorf("SysName(SysMutexLock) = %q", SysName(SysMutexLock))
	}
	if SysName(9999) == "" {
		t.Error("unknown syscall has empty name")
	}
}

func TestNoReturn(t *testing.T) {
	if !(Instr{Op: SYS, Imm: SysExit}).NoReturn() {
		t.Error("exit syscall should be no-return")
	}
	if (Instr{Op: SYS, Imm: SysWrite}).NoReturn() {
		t.Error("write syscall is not no-return")
	}
}
