package service

import (
	"errors"
	"strings"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/recon"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

func buildApp(t *testing.T, src string) *core.Result {
	t.Helper()
	mod, err := minic.Compile("app", "app.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const hangSrc = `int m;
int main() {
	mutex_lock(&m);
	mutex_lock(&m);
	exit(0);
}`

func TestHangDetectionAndSnap(t *testing.T) {
	res := buildApp(t, hangSrc)
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "hung-app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	svc := New(mach, 10_000)
	svc.Register(rt)

	w.Run(1000, func() bool { return p.Exited })
	if p.Exited {
		t.Fatal("self-deadlock exited?")
	}
	// Not yet hung by the threshold.
	if hung := svc.CheckStatus(); len(hung) != 0 {
		t.Fatalf("hung too early: %v", hung)
	}
	mach.SetClock(mach.Clock() + 50_000)
	hung := svc.CheckStatus()
	if len(hung) != 1 || hung[0] != "hung-app" {
		t.Fatalf("hung = %v", hung)
	}
	if len(svc.Snaps) != 1 {
		t.Fatalf("%d snaps", len(svc.Snaps))
	}
	if !strings.Contains(svc.Snaps[0].Reason, "hang") {
		t.Errorf("reason = %q", svc.Snaps[0].Reason)
	}
	// The hang snap reconstructs and names the blocking syscall.
	pt, err := recon.Reconstruct(svc.Snaps[0], recon.NewMapSet(res.Map))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	recon.Render(&sb, pt, recon.RenderOptions{})
	if !strings.Contains(sb.String(), "mutex-lock") {
		t.Errorf("hang view missing the blocking syscall:\n%s", sb.String())
	}
}

func TestHangPolicyOff(t *testing.T) {
	res := buildApp(t, hangSrc)
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	pol := tbrt.DefaultPolicy()
	pol.Hang = false
	p, rt, err := tbrt.NewProcess(mach, "hung-app", tbrt.Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	svc := New(mach, 10_000)
	svc.Register(rt)
	w.Run(1000, nil)
	mach.SetClock(mach.Clock() + 50_000)
	// Detection still reports the hang, but policy suppresses snaps.
	if hung := svc.CheckStatus(); len(hung) != 1 {
		t.Fatalf("hung = %v", hung)
	}
	if len(svc.Snaps) != 0 {
		t.Errorf("%d snaps despite hang policy off", len(svc.Snaps))
	}
}

func TestExternalSnapOfDeadProcess(t *testing.T) {
	res := buildApp(t, `int main() {
	int i = 0;
	while (1) { i = i + 1; }
	exit(0);
}`)
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "victim", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	svc := New(mach, 0)
	svc.Register(rt)
	w.Run(2000, nil)
	mach.KillProcess(p)

	s, err := svc.ExternalSnap("victim")
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || !strings.Contains(s.Reason, "post-mortem") {
		t.Fatalf("snap = %+v", s)
	}
	pt, err := recon.Reconstruct(s, recon.NewMapSet(res.Map))
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, tt := range pt.Threads {
		for _, e := range tt.Events {
			if e.Kind == recon.EvLine {
				lines++
			}
		}
	}
	if lines == 0 {
		t.Error("external snap of dead process recovered nothing")
	}
}

func TestExternalSnapUnknownProcess(t *testing.T) {
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	svc := New(mach, 0)
	if _, err := svc.ExternalSnap("nope"); err == nil {
		t.Error("unknown process accepted")
	}
}

func TestGroupSnap(t *testing.T) {
	// Two related processes; one faults; both get snapped.
	faulty := buildApp(t, `int main() {
	int z = 0;
	exit(1 / z);
}`)
	healthyMod, err := minic.Compile("helper", "helper.mc", `int main() {
	int i = 0;
	while (1) { i = i + 1; yield(); }
	exit(0);
}`)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := core.Instrument(healthyMod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	pf, rtf, err := tbrt.NewProcess(mach, "frontend", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	pf.Load(faulty.Module)
	ph, rth, err := tbrt.NewProcess(mach, "dbconn", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ph.Load(healthy.Module)

	svc := New(mach, 0)
	svc.Register(rtf)
	svc.Register(rth)
	svc.Group("frontend", "dbconn")

	pf.StartMain(0)
	ph.StartMain(0)
	w.Run(50_000, func() bool { return pf.Exited })
	if !pf.Exited {
		t.Fatal("faulty process still running")
	}
	// The runtime snapped the faulting process; the group propagation
	// is driven by the service being told about the fault.
	svc.NotifyFault("frontend")
	found := false
	for _, s := range rth.Snaps() {
		if strings.Contains(s.Reason, "group") {
			found = true
		}
	}
	if !found {
		t.Error("related process was not group-snapped")
	}
}

func TestCrossMachineGroupSnap(t *testing.T) {
	app := buildApp(t, `int main() {
	int i = 0;
	while (1) { i = i + 1; yield(); }
	exit(0);
}`)
	w := vm.NewWorld(1)
	m1 := w.NewMachine("m1", 0)
	m2 := w.NewMachine("m2", 0)
	p1, rt1, err := tbrt.NewProcess(m1, "web", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p1.Load(app.Module)
	p2, rt2, err := tbrt.NewProcess(m2, "db", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p2.Load(app.Module)
	p1.StartMain(0)
	p2.StartMain(0)
	w.Run(1000, nil)

	s1 := New(m1, 0)
	s1.Register(rt1)
	s2 := New(m2, 0)
	s2.Register(rt2)
	s1.Peer(s2)
	s1.Group("web", "db")

	s1.NotifyFault("web")
	found := false
	for _, s := range rt2.Snaps() {
		if strings.Contains(s.Reason, "group") {
			found = true
		}
	}
	if !found {
		t.Error("cross-machine group snap did not reach the peer")
	}
}

// TestServiceArchivesTriggeredSnaps: with a warehouse attached, every
// snap the service triggers (hang, external) lands in the archive
// under a reconstructed — not weak — signature, and re-triggering the
// same fault grows the bucket, not the blob set.
func TestServiceArchivesTriggeredSnaps(t *testing.T) {
	res := buildApp(t, hangSrc)
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "hung-app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	svc := New(mach, 10_000)
	svc.Register(rt)

	arch, err := archive.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	svc.SetArchive(arch, recon.NewMapSet(res.Map))

	w.Run(1000, func() bool { return p.Exited })
	mach.SetClock(mach.Clock() + 50_000)
	if hung := svc.CheckStatus(); len(hung) != 1 {
		t.Fatalf("hung = %v", hung)
	}
	if arch.NumBlobs() != 1 {
		t.Fatalf("hang snap not archived: %d blobs", arch.NumBlobs())
	}
	hangBucket := arch.Buckets()[0]
	if hangBucket.Weak {
		t.Errorf("hang snap archived under weak signature %q", hangBucket.Title)
	}

	// An external snap of the same (still hung) process is a distinct
	// snap — same process, later time — and must archive too.
	if _, err := svc.ExternalSnap("hung-app"); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Snaps); got != 2 {
		t.Fatalf("%d service snaps, want 2", got)
	}
	var total uint64
	for _, b := range arch.Buckets() {
		total += b.Count
	}
	if total != 2 {
		t.Errorf("archive holds %d occurrences, want 2", total)
	}

	// The counter agrees with the archive.
	var sb strings.Builder
	if err := svc.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "svc_archived_total 2") {
		t.Errorf("svc_archived_total != 2:\n%s", sb.String())
	}
}

// TestServiceArchiveNilMapsDegradesToWeak: an attached warehouse with
// no map resolver still preserves evidence, bucketed weakly.
func TestServiceArchiveNilMapsDegradesToWeak(t *testing.T) {
	res := buildApp(t, hangSrc)
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "hung-app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	svc := New(mach, 10_000)
	svc.Register(rt)
	arch, err := archive.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	svc.SetArchive(arch, nil)

	w.Run(1000, nil)
	mach.SetClock(mach.Clock() + 50_000)
	svc.CheckStatus()
	buckets := arch.Buckets()
	if len(buckets) != 1 || !buckets[0].Weak {
		t.Fatalf("buckets = %+v, want one weak bucket", buckets)
	}
}

// TestServiceForwardsTriggeredSnaps: with a forward hook wired (the
// fleet collection plane), every service-triggered snap is handed off
// and counted; a failing forwarder never loses the snap.
func TestServiceForwardsTriggeredSnaps(t *testing.T) {
	res := buildApp(t, hangSrc)
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "hung-app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	svc := New(mach, 10_000)
	svc.Register(rt)

	var forwarded []*snap.Snap
	svc.SetForward(func(sn *snap.Snap) error {
		forwarded = append(forwarded, sn)
		return nil
	})

	w.Run(1000, func() bool { return p.Exited })
	mach.SetClock(mach.Clock() + 50_000)
	if hung := svc.CheckStatus(); len(hung) != 1 {
		t.Fatalf("hung = %v", hung)
	}
	if len(forwarded) != 1 {
		t.Fatalf("forward hook received %d snap(s), want the hang snap", len(forwarded))
	}
	if forwarded[0] != svc.Snaps[0] {
		t.Error("forwarded snap is not the collected snap")
	}

	var sb strings.Builder
	if err := svc.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "svc_forwarded_total 1") {
		t.Errorf("svc_forwarded_total != 1:\n%s", sb.String())
	}

	// A broken forwarder (full disk, bad spool path) is counted but
	// never costs the snap: it still lands in Snaps.
	svc.SetForward(func(*snap.Snap) error { return errForward })
	if _, err := svc.ExternalSnap("hung-app"); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Snaps); got != 2 {
		t.Fatalf("%d service snaps, want 2 (snap lost on forward failure)", got)
	}
	sb.Reset()
	if err := svc.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "svc_forward_errors_total 1") {
		t.Errorf("svc_forward_errors_total != 1:\n%s", sb.String())
	}
}

var errForward = errors.New("spool unwritable")

// buildNamed compiles and instruments one named MiniC module.
func buildNamed(t *testing.T, name, src string) *core.Result {
	t.Helper()
	mod, err := minic.Compile(name, name+".mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetVerifyOnRegister: once two distinct instrumented modules
// are loaded on the machine, registration triggers the cross-module
// verification and the verify_fleet_ counters record the outcome.
func TestFleetVerifyOnRegister(t *testing.T) {
	callerSrc := `int main() {
		int req = alloc(64);
		int resp = alloc(64);
		rpc_call(78, req, 8, resp);
		exit(0);
	}`
	serverSrc := `int main() {
		int buf = alloc(64);
		rpc_recv(77, buf, 64);
		rpc_reply(77, 0, buf, 8);
		exit(0);
	}`
	client := buildNamed(t, "client", callerSrc)
	server := buildNamed(t, "server", serverSrc)

	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	svc := New(mach, 0)

	p1, rt1, err := tbrt.NewProcess(mach, "client-proc", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Load(client.Module); err != nil {
		t.Fatal(err)
	}
	svc.Register(rt1)
	runs := svc.fleetM.Runs.Load()
	if runs != 0 {
		t.Fatalf("fleet check ran with a single module loaded (%d runs)", runs)
	}

	p2, rt2, err := tbrt.NewProcess(mach, "server-proc", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Load(server.Module); err != nil {
		t.Fatal(err)
	}
	svc.Register(rt2)
	if got := svc.fleetM.Runs.Load(); got != 1 {
		t.Fatalf("fleet runs = %d, want 1", got)
	}
	// Endpoint 78 has no server in the fleet: the run must fail.
	if got := svc.fleetM.Failed.Load(); got != 1 {
		t.Fatalf("fleet failed runs = %d, want 1", got)
	}
	if got := svc.fleetM.DiagErrors.Load(); got == 0 {
		t.Fatal("no error diagnostics counted for the unserved endpoint")
	}

	// An explicit re-check reports the same fleet, still broken.
	res := svc.VerifyFleet()
	if res.Ok() || len(res.Modules) != 2 {
		t.Fatalf("VerifyFleet: ok=%v modules=%v", res.Ok(), res.Modules)
	}
}

// TestFleetVerifyCleanPair: a well-formed client/server pair passes
// the load-time check and counts as a clean run.
func TestFleetVerifyCleanPair(t *testing.T) {
	callerSrc := `int main() {
		int req = alloc(64);
		int resp = alloc(64);
		rpc_call(77, req, 8, resp);
		exit(0);
	}`
	serverSrc := `int main() {
		int buf = alloc(64);
		rpc_recv(77, buf, 64);
		rpc_reply(77, 0, buf, 8);
		exit(0);
	}`
	client := buildNamed(t, "client", callerSrc)
	server := buildNamed(t, "server", serverSrc)

	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	svc := New(mach, 0)
	for i, res := range []*core.Result{client, server} {
		name := []string{"client-proc", "server-proc"}[i]
		p, rt, err := tbrt.NewProcess(mach, name, tbrt.Config{Policy: tbrt.DefaultPolicy()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Load(res.Module); err != nil {
			t.Fatal(err)
		}
		svc.Register(rt)
	}
	if got := svc.fleetM.Clean.Load(); got != 1 {
		t.Fatalf("fleet clean runs = %d, want 1", got)
	}
	if got := svc.fleetM.Failed.Load(); got != 0 {
		t.Fatalf("fleet failed runs = %d, want 0", got)
	}
}
