package service

import (
	"bytes"
	"encoding/json"
	"testing"

	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

func TestServiceTelemetryAndStatus(t *testing.T) {
	res := buildApp(t, hangSrc)
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "hung-app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	svc := New(mach, 10_000)
	svc.Register(rt)

	w.Run(1000, func() bool { return p.Exited })
	svc.CheckStatus() // healthy sweep
	mach.SetClock(mach.Clock() + 50_000)
	svc.CheckStatus() // hung sweep

	reg := svc.Metrics()
	if got := reg.Counter("svc_heartbeats_total", "").Load(); got != 2 {
		t.Errorf("heartbeats = %d, want 2", got)
	}
	if got := reg.Counter("svc_hangs_total", "").Load(); got != 1 {
		t.Errorf("hangs = %d, want 1", got)
	}
	events := reg.FlightRecorder().Events()
	miss := false
	for _, e := range events {
		if e.Kind == "heartbeat-miss" && e.Detail == "hung-app" {
			miss = true
		}
	}
	if !miss {
		t.Errorf("no heartbeat-miss flight event in %v", events)
	}

	var buf bytes.Buffer
	if err := svc.WriteStatus(&buf); err != nil {
		t.Fatal(err)
	}
	var rep StatusReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("STATUS not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Machine != "host" || rep.HangCycles != 10_000 {
		t.Errorf("header = %q/%d", rep.Machine, rep.HangCycles)
	}
	if len(rep.Processes) != 1 || rep.Processes[0].Name != "hung-app" {
		t.Fatalf("processes = %+v", rep.Processes)
	}
	// The runtime's metrics ride along: the hang snap must show up in
	// the embedded per-process counters.
	var procMetrics struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(rep.Processes[0].Metrics, &procMetrics); err != nil {
		t.Fatal(err)
	}
	if procMetrics.Counters["tbrt_snaps_total"] == 0 {
		t.Errorf("per-process metrics missing snap count: %v", procMetrics.Counters)
	}
	// The service's own section carries the svc_ counters.
	var svcMetrics struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(rep.Service, &svcMetrics); err != nil {
		t.Fatal(err)
	}
	if svcMetrics.Counters["svc_hangs_total"] != 1 {
		t.Errorf("service counters = %v", svcMetrics.Counters)
	}
}

func TestServiceExternalAndGroupCounters(t *testing.T) {
	res := buildApp(t, `int main() {
	int i = 0;
	while (1) { i = i + 1; yield(); }
	exit(0);
}`)
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	p1, rt1, err := tbrt.NewProcess(mach, "web", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p1.Load(res.Module)
	p2, rt2, err := tbrt.NewProcess(mach, "db", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p2.Load(res.Module)
	p1.StartMain(0)
	p2.StartMain(0)
	w.Run(1000, nil)

	svc := New(mach, 0)
	svc.Register(rt1)
	svc.Register(rt2)
	svc.Group("web", "db")

	if _, err := svc.ExternalSnap("web"); err != nil {
		t.Fatal(err)
	}
	svc.NotifyFault("web")

	reg := svc.Metrics()
	if got := reg.Counter("svc_external_snaps_total", "").Load(); got != 1 {
		t.Errorf("external snaps = %d, want 1", got)
	}
	if got := reg.Counter("svc_group_snaps_total", "").Load(); got != 1 {
		t.Errorf("group snaps = %d, want 1", got)
	}
}
