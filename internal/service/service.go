// Package service implements the per-machine TraceBack service
// process (paper §3.6.1, §3.7.5): runtimes register with it, it
// exchanges heartbeats to detect hung processes, it triggers external
// snaps on request (including for processes that died abruptly), and
// it coordinates group snaps across related processes — locally and
// across machines.
package service

import (
	"fmt"

	"traceback/internal/archive"
	"traceback/internal/recon"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/telemetry"
	"traceback/internal/verify"
	"traceback/internal/verify/fleet"
	"traceback/internal/vm"
)

// Service is one machine's TraceBack service process.
type Service struct {
	machine *vm.Machine
	// HangCycles is how long a process may go without executing an
	// instruction before the STATUS check declares it hung.
	HangCycles uint64

	runtimes []*tbrt.Runtime
	peers    []*Service

	// groups lists process-name groups that snap together.
	groups [][]string

	// Snaps collects snaps the service triggered.
	Snaps []*snap.Snap

	// arch, when set, receives every service-triggered snap (hang,
	// external, group) so they accumulate in the warehouse instead of
	// only in Snaps. archMaps fingerprints them; nil maps degrade to
	// weak metadata signatures.
	arch     *archive.Archive
	archMaps recon.MapResolver

	// forward, when set, additionally hands every service-triggered
	// snap to the fleet collection plane (typically
	// collect.SpoolForwarder: spool to disk, let tbagent upload), so
	// remote machines feed the central warehouse automatically.
	forward func(*snap.Snap) error

	// Self-telemetry (svc_ prefix) plus a flight recorder for
	// heartbeat misses.
	reg         *telemetry.Registry
	rec         *telemetry.Recorder
	verify      *verify.Metrics
	fleetM      *fleet.Metrics
	heartbeats  *telemetry.Counter
	hangs       *telemetry.Counter
	externals   *telemetry.Counter
	groupSnaps  *telemetry.Counter
	archived    *telemetry.Counter
	archiveErrs *telemetry.Counter
	forwarded   *telemetry.Counter
	forwardErrs *telemetry.Counter
}

// New creates the machine's service process.
func New(m *vm.Machine, hangCycles uint64) *Service {
	if hangCycles == 0 {
		hangCycles = 500_000
	}
	s := &Service{machine: m, HangCycles: hangCycles}
	s.bindTelemetry(telemetry.New())
	return s
}

// UseTelemetry rebinds the service's metrics onto a shared registry
// (call before the first CheckStatus to keep counts in one place).
func (s *Service) UseTelemetry(reg *telemetry.Registry) { s.bindTelemetry(reg) }

func (s *Service) bindTelemetry(reg *telemetry.Registry) {
	s.reg = reg
	s.rec = reg.Recorder(256)
	s.heartbeats = reg.Counter("svc_heartbeats_total", "STATUS sweeps over registered runtimes")
	s.hangs = reg.Counter("svc_hangs_total", "processes declared hung by heartbeat timeout")
	s.externals = reg.Counter("svc_external_snaps_total", "external snaps triggered by name")
	s.groupSnaps = reg.Counter("svc_group_snaps_total", "group-propagated snaps taken")
	s.archived = reg.Counter("svc_archived_total", "service-triggered snaps ingested into the warehouse")
	s.archiveErrs = reg.Counter("svc_archive_errors_total", "warehouse ingests that failed")
	s.forwarded = reg.Counter("svc_forwarded_total", "service-triggered snaps handed to the collection plane")
	s.forwardErrs = reg.Counter("svc_forward_errors_total", "collection-plane forwards that failed")
	s.verify = verify.NewMetrics(reg)
	s.fleetM = fleet.NewMetrics(reg)
}

// SetArchive routes every snap the service triggers into the
// warehouse. maps fingerprints them via reconstruction; pass nil to
// archive under weak metadata signatures (still bucketed, still
// deduplicated, just coarser).
func (s *Service) SetArchive(a *archive.Archive, maps recon.MapResolver) {
	s.arch = a
	s.archMaps = maps
}

// SetForward routes every snap the service triggers into the fleet
// collection plane. fwd is typically collect.SpoolForwarder(dir): the
// snap lands in the local spool and tbagent uploads it to tbcollectd,
// so remote machines feed the central warehouse without any local CLI
// step. A forward failure is counted and flight-recorded but never
// blocks the snap — it stays in Snaps (and the local archive, when
// one is attached) regardless.
func (s *Service) SetForward(fwd func(*snap.Snap) error) {
	s.forward = fwd
}

// collect is the single funnel for service-triggered snaps: remember
// it, archive it when a warehouse is attached, and forward it to the
// collection plane when one is wired.
func (s *Service) collect(sn *snap.Snap) {
	if sn == nil {
		return
	}
	s.Snaps = append(s.Snaps, sn)
	if s.forward != nil {
		if err := s.forward(sn); err != nil {
			s.forwardErrs.Inc()
			s.rec.Record(s.machine.Clock(), "forward-error", err.Error())
		} else {
			s.forwarded.Inc()
		}
	}
	if s.arch == nil {
		return
	}
	sig := archive.SignSnap(sn, s.archMaps)
	if _, err := s.arch.Ingest(sn, sig); err != nil {
		s.archiveErrs.Inc()
		s.rec.Record(s.machine.Clock(), "archive-error", err.Error())
		return
	}
	s.archived.Inc()
}

// ObserveVerification records a module verification outcome in the
// service's registry (verify_ counters) and flight recorder, so snaps
// taken on this machine carry provenance for how trustworthy the
// instrumentation feeding them is.
func (s *Service) ObserveVerification(res *verify.Result) {
	s.verify.Observe(res)
	kind := "module-verified"
	if !res.Ok() {
		kind = "module-verify-failed"
	}
	s.rec.Record(s.machine.Clock(), kind, res.Module)
}

// Metrics returns the service's registry.
func (s *Service) Metrics() *telemetry.Registry { return s.reg }

// Register adds a runtime to the service (the runtime side of the
// local protocol). Once the machine hosts two or more distinct
// instrumented modules, every registration re-runs the cross-module
// verification, so a module that breaks the fleet's RPC/SYNC
// invariants is flagged the moment it joins — before any fault needs
// diagnosing.
func (s *Service) Register(rt *tbrt.Runtime) {
	s.runtimes = append(s.runtimes, rt)
	if len(s.fleetModules()) >= 2 {
		s.VerifyFleet()
	}
}

// fleetModules gathers the distinct instrumented modules currently
// loaded across every registered runtime, deduplicated by checksum
// (two processes running the same module contribute one fleet member).
func (s *Service) fleetModules() []fleet.Input {
	seen := map[string]bool{}
	var out []fleet.Input
	for _, rt := range s.runtimes {
		for _, lm := range rt.Proc().Modules {
			if lm.Unloaded || lm.Mod == nil || !lm.Mod.Instrumented {
				continue
			}
			sum := lm.Mod.ChecksumHex()
			if seen[sum] {
				continue
			}
			seen[sum] = true
			out = append(out, fleet.Input{Module: lm.Mod})
		}
	}
	return out
}

// VerifyFleet runs the cross-module pass suite over every distinct
// instrumented module on the machine, recording the outcome in the
// verify_fleet_ counters and the flight recorder.
func (s *Service) VerifyFleet() *fleet.Result {
	res := fleet.Verify(s.fleetModules(), fleet.Options{})
	s.fleetM.Observe(res)
	kind := "fleet-verified"
	if !res.Ok() {
		kind = "fleet-verify-failed"
	}
	s.rec.Record(s.machine.Clock(), kind,
		fmt.Sprintf("%d module(s), %d error(s)", len(res.Modules), res.NumError))
	return res
}

// Peer connects this service to another machine's service for
// cross-machine group snaps.
func (s *Service) Peer(other *Service) {
	s.peers = append(s.peers, other)
	other.peers = append(other.peers, s)
}

// Group declares that the named processes form an application group:
// a fault in any of them snaps all of them (paper §3.6.1).
func (s *Service) Group(names ...string) {
	s.groups = append(s.groups, names)
}

// CheckStatus performs the heartbeat sweep: every registered runtime
// whose process is alive but has made no progress within HangCycles
// is declared hung and snapped (with its group). Returns the hung
// process names.
func (s *Service) CheckStatus() []string {
	var hung []string
	now := s.machine.Clock()
	s.heartbeats.Inc()
	for _, rt := range s.runtimes {
		p := rt.Proc()
		if p.Exited || !p.Alive() {
			continue
		}
		if now-p.LastProgress() < s.HangCycles {
			continue
		}
		hung = append(hung, p.Name)
		s.hangs.Inc()
		s.rec.Record(now, "heartbeat-miss", p.Name)
		if rt.PolicyHang() {
			s.collect(rt.TakeSnap(tbrt.SnapReason{Kind: "hang", Detail: "heartbeat timeout"}))
			s.snapGroupOf(p.Name)
		}
	}
	return hung
}

// ExternalSnap snaps a process by name — the external snap utility
// for hung or unresponsive processes (paper §3.6). Works on dead
// processes too, reading the trace region out of their memory.
func (s *Service) ExternalSnap(name string) (*snap.Snap, error) {
	for _, rt := range s.runtimes {
		if rt.Proc().Name != name {
			continue
		}
		var sn *snap.Snap
		if rt.Proc().Exited {
			sn = rt.PostMortemSnap()
		} else {
			sn = rt.TakeSnap(tbrt.SnapReason{Kind: "external", Detail: "snap utility"})
		}
		if sn != nil {
			s.collect(sn)
			s.externals.Inc()
		}
		return sn, nil
	}
	return nil, fmt.Errorf("service: no registered process %q", name)
}

// NotifyFault is called when a runtime snaps on a fault; the service
// propagates a group snap to related processes, including those on
// peer machines.
func (s *Service) NotifyFault(name string) {
	s.snapGroupOf(name)
}

func (s *Service) snapGroupOf(name string) {
	seen := map[*Service]bool{s: true}
	all := append([]*Service{s}, s.peers...)
	for _, g := range s.groups {
		member := false
		for _, n := range g {
			if n == name {
				member = true
			}
		}
		if !member {
			continue
		}
		for _, n := range g {
			if n == name {
				continue
			}
			for _, svc := range all {
				if seen[svc] && svc != s {
					continue
				}
				for _, rt := range svc.runtimes {
					if rt.Proc().Name == n && !rt.Proc().Exited {
						if sn := rt.TakeSnap(tbrt.SnapReason{Kind: "group", Detail: "fault in " + name}); sn != nil {
							s.collect(sn)
							s.groupSnaps.Inc()
						}
					}
				}
			}
		}
	}
}

// AllSnaps gathers every snap from every registered runtime plus the
// service's own — the input set for distributed reconstruction.
func (s *Service) AllSnaps() []*snap.Snap {
	var out []*snap.Snap
	for _, rt := range s.runtimes {
		out = append(out, rt.Snaps()...)
	}
	return out
}
