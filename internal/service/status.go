package service

import (
	"bytes"
	"encoding/json"
	"io"
)

// StatusReport is the service's STATUS reply: machine identity, the
// service's own counters, and one entry per registered runtime with
// that runtime's full metrics snapshot. It is the wire form of the
// paper's STATUS message, extended with self-telemetry.
type StatusReport struct {
	Machine    string          `json:"machine"`
	Clock      uint64          `json:"clock"`
	HangCycles uint64          `json:"hang_cycles"`
	Service    json.RawMessage `json:"service"`
	Processes  []ProcessStatus `json:"processes"`
}

// ProcessStatus is one registered runtime's slice of the report.
type ProcessStatus struct {
	Name    string          `json:"name"`
	PID     int             `json:"pid"`
	Alive   bool            `json:"alive"`
	Exited  bool            `json:"exited"`
	Metrics json.RawMessage `json:"metrics"`
}

// Status assembles the extended STATUS report.
func (s *Service) Status() (*StatusReport, error) {
	var svcBuf bytes.Buffer
	if err := s.reg.WriteJSON(&svcBuf); err != nil {
		return nil, err
	}
	rep := &StatusReport{
		Machine:    s.machine.Name,
		Clock:      s.machine.Clock(),
		HangCycles: s.HangCycles,
		Service:    json.RawMessage(svcBuf.Bytes()),
		Processes:  []ProcessStatus{},
	}
	for _, rt := range s.runtimes {
		p := rt.Proc()
		var buf bytes.Buffer
		if err := rt.Metrics().WriteJSON(&buf); err != nil {
			return nil, err
		}
		rep.Processes = append(rep.Processes, ProcessStatus{
			Name:    p.Name,
			PID:     p.PID,
			Alive:   p.Alive(),
			Exited:  p.Exited,
			Metrics: json.RawMessage(buf.Bytes()),
		})
	}
	return rep, nil
}

// WriteStatus writes the STATUS report as indented JSON.
func (s *Service) WriteStatus(w io.Writer) error {
	rep, err := s.Status()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
