package fault

import (
	"fmt"
	"sort"

	"traceback/internal/recon"
	"traceback/internal/snap"
	"traceback/internal/trace"
)

// Violation is one invariant failure.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Invariant names.
const (
	InvTornRecords = "no-torn-records"
	InvSyncCausal  = "sync-causal"
	InvFaultLine   = "fault-line"
	InvWrap        = "wrap-exercised"
	InvIndexParity = "index-parity"
	InvNoSnap      = "snap-produced"
	InvReplay      = "replay-identical"
)

// checkTrial runs every per-trial invariant over a trial's harvest
// and records violations on the report row.
func (c *Campaign) checkTrial(tr *TrialReport, snaps []*snap.Snap, ms *recon.MapSet, wraps int) {
	violate := func(inv, detail string) {
		tr.Violations = append(tr.Violations, Violation{Invariant: inv, Detail: detail})
		c.met.violations.Inc()
		c.rec.Record(0, "fault-violation", inv+": "+detail)
	}

	if len(snaps) == 0 {
		violate(InvNoSnap, "trial produced no snap")
		return
	}

	// Invariant: no torn records — every snap reconstructs, even
	// after abrupt termination (sub-buffer commit points bound loss).
	byIdx := make([]*recon.ProcessTrace, len(snaps))
	var procs []*recon.ProcessTrace
	truncated := false
	for i, s := range snaps {
		pt, err := recon.Reconstruct(s, ms)
		if err != nil {
			violate(InvTornRecords, fmt.Sprintf("snap %d (%s/%s): %v", i, s.Process, s.Reason, err))
			continue
		}
		byIdx[i] = pt
		procs = append(procs, pt)
		for _, tt := range pt.Threads {
			tr.Events += len(tt.Events)
			if tt.Truncated {
				truncated = true
			}
		}
	}
	tr.Truncated = truncated

	// Invariant: causal SYNC order across machines.
	for _, v := range checkSyncCausal(procs, truncated) {
		violate(InvSyncCausal, v)
	}

	// Invariant: the faulting (or last-executed) block/line resolves.
	tr.FaultLines = faultLines(procs)
	if len(tr.FaultLines) == 0 {
		if last := lastLines(procs); len(last) == 0 {
			violate(InvFaultLine, "no faulting or last-executed line resolved in any snap")
		} else {
			tr.FaultLines = last
		}
	}
	// A snap triggered by an exception must pinpoint its fault line,
	// not merely some thread's last activity.
	for i, s := range snaps {
		if len(s.Reason) >= 9 && s.Reason[:9] == "exception" && byIdx[i] != nil {
			if !hasFaultEvent(byIdx[i]) {
				violate(InvFaultLine, fmt.Sprintf("snap %d (%s): exception snap with no resolvable fault line", i, s.Reason))
			}
		}
	}

	// Invariant (wrap trials): the tiny buffers actually wrapped, so
	// the truncation-recovery path was exercised, and the fault line
	// still resolved despite the lost history.
	if tr.Kind == KindWrap && wraps == 0 && !truncated {
		violate(InvWrap, "tiny-buffer trial saw no wrap and no truncated thread")
	}
}

// checkSyncCausal verifies SYNC causality over a trial's traces:
// per-thread, each logical thread's sequence numbers never regress
// (exact repeats are legal: duplicated deliveries); across threads,
// every received sequence number was sent by the logical-thread peer
// (skipped when history wrapped away — the send may be lost).
func checkSyncCausal(procs []*recon.ProcessTrace, truncated bool) []string {
	var out []string
	type sendKey struct {
		key   recon.LogicalKey
		point trace.SyncPoint
		seq   uint32
	}
	sends := map[sendKey]bool{}
	type recvAt struct {
		key  sendKey
		desc string
	}
	var recvs []recvAt

	for _, pt := range procs {
		for _, tt := range pt.Threads {
			last := map[recon.LogicalKey]uint32{}
			seen := map[recon.LogicalKey]map[uint32]bool{}
			for _, e := range tt.Events {
				if e.Kind != recon.EvSync || e.Sync == nil {
					continue
				}
				s := e.Sync
				k := recon.LogicalKey{RuntimeID: s.RuntimeID, LogicalThread: s.LogicalThread}
				// A regression to a never-seen sequence is a causality
				// break; regressing to an already-seen one is a
				// re-delivery (injected duplication) and legal.
				if seen[k] != nil && s.Seq < last[k] && !seen[k][s.Seq] {
					out = append(out, fmt.Sprintf("%s/%s t%d: logical %d/%d seq %d after %d",
						pt.Snap.Host, pt.Snap.Process, tt.TID, s.RuntimeID, s.LogicalThread, s.Seq, last[k]))
				}
				if seen[k] == nil {
					seen[k] = map[uint32]bool{}
				}
				seen[k][s.Seq] = true
				last[k] = s.Seq
				switch s.Point {
				case trace.SyncCallSend, trace.SyncReplySend:
					sends[sendKey{k, s.Point, s.Seq}] = true
				case trace.SyncCallRecv:
					recvs = append(recvs, recvAt{sendKey{k, trace.SyncCallSend, s.Seq - 1},
						fmt.Sprintf("%s t%d call-recv seq %d", pt.Snap.Process, tt.TID, s.Seq)})
				case trace.SyncReplyRecv:
					recvs = append(recvs, recvAt{sendKey{k, trace.SyncReplySend, s.Seq - 1},
						fmt.Sprintf("%s t%d reply-recv seq %d", pt.Snap.Process, tt.TID, s.Seq)})
				}
			}
		}
	}
	if !truncated {
		for _, r := range recvs {
			if !sends[r.key] {
				out = append(out, r.desc+": no matching send in any peer trace")
			}
		}
	}
	sort.Strings(out)
	return out
}

// hasFaultEvent reports whether any thread's history ends at a
// resolved fault line.
func hasFaultEvent(pt *recon.ProcessTrace) bool {
	for _, tt := range pt.Threads {
		if !tt.Faulted {
			continue
		}
		for i := len(tt.Events) - 1; i >= 0; i-- {
			e := &tt.Events[i]
			if e.Fault && e.File != "" {
				return true
			}
		}
	}
	return false
}

// faultLines collects the resolved fault lines of faulted threads
// ("file:line"), sorted and deduplicated.
func faultLines(procs []*recon.ProcessTrace) []string {
	set := map[string]bool{}
	for _, pt := range procs {
		for _, tt := range pt.Threads {
			if !tt.Faulted {
				continue
			}
			for i := len(tt.Events) - 1; i >= 0; i-- {
				e := &tt.Events[i]
				if e.Fault && e.File != "" {
					set[fmt.Sprintf("%s:%d", e.File, e.Line)] = true
					break
				}
			}
		}
	}
	return sortedKeys(set)
}

// lastLines collects each thread's last executed source line — the
// identification a kill -9 or hang diagnosis rests on.
func lastLines(procs []*recon.ProcessTrace) []string {
	set := map[string]bool{}
	for _, pt := range procs {
		for _, tt := range pt.Threads {
			for i := len(tt.Events) - 1; i >= 0; i-- {
				e := &tt.Events[i]
				if e.Kind == recon.EvLine && e.File != "" {
					set[fmt.Sprintf("%s:%d", e.File, e.Line)] = true
					break
				}
			}
		}
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
