package fault

import (
	"bytes"
	"strings"
	"testing"

	"traceback/internal/telemetry"
)

// TestCampaignEndToEnd runs a full campaign — every kind, recording
// on, wire phase included — and checks the headline contract: at
// least six fault kinds exercised end to end, snaps harvested and
// reconstructed, every trial's recording replay-verified, no
// invariant violations, and warehouse index parity after a mid-ingest
// daemon kill.
func TestCampaignEndToEnd(t *testing.T) {
	reg := telemetry.New()
	c, err := New(Config{
		Seed:      1,
		Kinds:     []string{"all"},
		Record:    true,
		Wire:      true,
		WorkDir:   t.TempDir(),
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	kinds := map[string]bool{}
	for _, tr := range rep.Trials {
		kinds[tr.Kind] = true
		if tr.Snaps == 0 {
			t.Errorf("trial %d (%s/%s): no snaps", tr.Index, tr.Kind, tr.Scenario)
		}
		if tr.Events == 0 {
			t.Errorf("trial %d (%s/%s): no reconstructed events", tr.Index, tr.Kind, tr.Scenario)
		}
		if len(tr.FaultLines) == 0 {
			t.Errorf("trial %d (%s/%s): no fault line identified", tr.Index, tr.Kind, tr.Scenario)
		}
		if len(tr.Planned) == 0 {
			t.Errorf("trial %d (%s/%s): empty schedule", tr.Index, tr.Kind, tr.Scenario)
		}
		for _, v := range tr.Violations {
			t.Errorf("trial %d (%s/%s): %s: %s", tr.Index, tr.Kind, tr.Scenario, v.Invariant, v.Detail)
		}
		if !tr.Replayed {
			t.Errorf("trial %d (%s/%s): recording did not replay-verify (%s)",
				tr.Index, tr.Kind, tr.Scenario, tr.ReplayDivergence)
		}
	}
	if rep.Wire != nil {
		kinds[KindCollect] = true
	}
	if len(kinds) < 6 {
		t.Errorf("only %d fault kind(s) covered: %v", len(kinds), kinds)
	}
	if rep.Violations != 0 {
		t.Errorf("campaign reports %d violation(s)", rep.Violations)
	}

	if rep.Wire == nil {
		t.Fatal("wire phase did not run")
	}
	if !rep.Wire.IndexParity {
		t.Error("warehouse index differs from direct local ingest")
	}
	if rep.Wire.KillAtUpload == 0 {
		t.Error("collect kind scheduled but daemon was never killed mid-ingest")
	}
	if rep.Wire.Spooled == 0 || rep.Wire.Blobs != rep.Wire.Spooled {
		t.Errorf("wire: spooled %d, blobs %d; want equal and nonzero", rep.Wire.Spooled, rep.Wire.Blobs)
	}

	if !strings.Contains(rep.Repro, "tbfault run -seed 1") {
		t.Errorf("repro line %q lacks the seed", rep.Repro)
	}

	// fault_* telemetry is live on the shared registry, asserted by
	// name exactly like the coll_* counters are in internal/collect.
	counters := map[string]bool{ // name -> must be nonzero
		"fault_trials_total":             true,
		"fault_injected_total":           true,
		"fault_kills_total":              true,
		"fault_signals_total":            true,
		"fault_rpc_total":                true,
		"fault_unloads_total":            true,
		"fault_managed_interrupts_total": true,
		"fault_snaps_total":              true,
		"fault_collect_kills_total":      true,
		"fault_replays_total":            true,
		"fault_violations_total":         false,
		"fault_replay_divergence_total":  false,
	}
	for name, nonzero := range counters {
		v := reg.Counter(name, "").Load()
		if nonzero && v == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
		if !nonzero && v != 0 {
			t.Errorf("counter %s = %d, want 0", name, v)
		}
	}
}

// TestCampaignDeterminism: the same seed yields a byte-identical
// report; a different seed yields a different fault schedule. This is
// the repro contract regression snaps rely on.
func TestCampaignDeterminism(t *testing.T) {
	run := func(seed int64) []byte {
		c, err := New(Config{Seed: seed, Kinds: []string{KindKill, KindSignal, "rpc"}})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a1 := run(7)
	a2 := run(7)
	if !bytes.Equal(a1, a2) {
		t.Errorf("same seed, different reports:\n--- run 1\n%s\n--- run 2\n%s", a1, a2)
	}
	b := run(8)
	if bytes.Equal(a1, b) {
		t.Error("different seeds produced identical fault schedules")
	}
}

// TestKindExpansion covers the CLI kind grammar.
func TestKindExpansion(t *testing.T) {
	all, err := ExpandKinds(nil)
	if err != nil || len(all) != len(AllKinds) {
		t.Fatalf("ExpandKinds(nil) = %v, %v", all, err)
	}
	rpc, err := ExpandKinds([]string{"rpc", "kill"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{KindKill, KindRPCDrop, KindRPCDelay, KindRPCDup}
	if len(rpc) != len(want) {
		t.Fatalf("ExpandKinds(rpc,kill) = %v, want %v", rpc, want)
	}
	for i := range want {
		if rpc[i] != want[i] {
			t.Fatalf("ExpandKinds(rpc,kill) = %v, want %v", rpc, want)
		}
	}
	if _, err := ExpandKinds([]string{"nope"}); err == nil {
		t.Error("unknown kind accepted")
	}
}
