package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"traceback/internal/scenario"
	"traceback/internal/vm"
)

// subseed derives trial i's sub-RNG seed from the campaign seed
// (splitmix-style, so adjacent trials and adjacent seeds decorrelate).
func subseed(seed int64, i int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x)
}

// baseline is what an uninjected run of a scenario looks like: the
// number of scheduling quanta and RPC requests it spans. Fault times
// are drawn inside this window so they land while the workload is
// actually executing.
type baseline struct {
	quanta   uint64
	rpcCalls int
}

// counter measures a baseline.
type counter struct {
	quanta uint64
	calls  int
}

func (ct *counter) AtQuantum(m *vm.Machine) { ct.quanta++ }
func (ct *counter) AtRPC(from *vm.Thread, ep uint64, reply bool) vm.RPCFault {
	if !reply {
		ct.calls++
	}
	return vm.RPCFault{}
}

// window picks a quantum inside the live middle of the baseline span
// (5%–95%), avoiding startup and the post-fault idle tail.
func window(rng *rand.Rand, quanta uint64) uint64 {
	if quanta < 20 {
		return 1 + uint64(rng.Int63n(int64(quanta)+1))
	}
	lo := quanta / 20
	hi := quanta - lo
	return lo + uint64(rng.Int63n(int64(hi-lo)))
}

// signalPalette is what a storm throws: faults the runtime snaps on
// plus the app/interrupt signals it traces.
var signalPalette = []int{vm.SigInt, vm.SigIll, vm.SigFpe, vm.SigSegv, vm.SigApp}

// sigEvent is one planned async signal delivery.
type sigEvent struct {
	at   uint64
	proc string
	nth  int // victim: nth eligible thread, by sorted TID
	sig  int
}

// plan is a trial's fully-determined fault schedule.
type plan struct {
	schedule []string // deterministic description, one line per planned event

	killProc string
	killAt   uint64

	signals []sigEvent

	dropReq  map[int]bool
	dropRep  map[int]bool
	delayReq map[int]uint64
	dupReq   map[int]bool

	unloadProc   string
	unloadModule string
	unloadAt     uint64
}

func sortedRoles(procs map[string]*vm.Process) []string {
	roles := make([]string, 0, len(procs))
	for r := range procs {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	return roles
}

// buildPlan draws a trial's schedule from its sub-RNG. Everything is
// derived from rng and the baseline — no clocks, no map iteration.
func buildPlan(kind string, roles []string, bl baseline, rng *rand.Rand) *plan {
	p := &plan{
		dropReq:  map[int]bool{},
		dropRep:  map[int]bool{},
		delayReq: map[int]uint64{},
		dupReq:   map[int]bool{},
	}
	note := func(format string, args ...any) {
		p.schedule = append(p.schedule, fmt.Sprintf(format, args...))
	}
	switch kind {
	case KindKill:
		p.killProc = roles[rng.Intn(len(roles))]
		p.killAt = window(rng, bl.quanta)
		note("q=%d kill -9 %s", p.killAt, p.killProc)
	case KindSignal:
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			ev := sigEvent{
				at:   window(rng, bl.quanta),
				proc: roles[rng.Intn(len(roles))],
				nth:  rng.Intn(4),
				sig:  signalPalette[rng.Intn(len(signalPalette))],
			}
			p.signals = append(p.signals, ev)
		}
		sort.Slice(p.signals, func(i, j int) bool { return p.signals[i].at < p.signals[j].at })
		for _, ev := range p.signals {
			note("q=%d signal %s -> %s thread#%d", ev.at, vm.SignalName(ev.sig), ev.proc, ev.nth)
		}
	case KindRPCDrop:
		k := 1 + rng.Intn(maxInt(bl.rpcCalls, 1))
		if rng.Intn(2) == 0 {
			p.dropReq[k] = true
			note("rpc req#%d drop", k)
		} else {
			p.dropRep[k] = true
			note("rpc rep#%d drop", k)
		}
	case KindRPCDelay:
		k := 1 + rng.Intn(maxInt(bl.rpcCalls, 1))
		// Longer than CrossMachineLatency so later sends overtake it.
		d := vm.CrossMachineLatency * uint64(2+rng.Intn(8))
		p.delayReq[k] = d
		note("rpc req#%d delay +%d cycles", k, d)
	case KindRPCDup:
		k := 1 + rng.Intn(maxInt(bl.rpcCalls, 1))
		p.dupReq[k] = true
		note("rpc req#%d duplicate", k)
	case KindUnload:
		// The cross-machine server faults inside strlib; pulling the
		// library out from under it mid-call is the classic
		// module-unload diagnosis scenario (paper §3.4).
		p.unloadProc = "petstore"
		p.unloadModule = "strlib"
		p.unloadAt = window(rng, bl.quanta)
		note("q=%d unload %s from %s", p.unloadAt, p.unloadModule, p.unloadProc)
	case KindWrap:
		note("tiny trace buffers (wrap stress); no injected event")
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// injector executes a plan against a built scenario. It implements
// vm.Injector: AtQuantum fires kills, signals, and unloads by global
// quantum count; AtRPC perturbs the transport by request index.
type injector struct {
	c     *Campaign
	setup *scenario.Setup
	p     *plan

	quanta uint64
	sigIdx int
	req    int
	rep    int

	fired []string
}

func (in *injector) fire(format string, args ...any) {
	in.fired = append(in.fired, fmt.Sprintf(format, args...))
	in.c.met.injected.Inc()
	in.c.rec.Record(0, "fault-inject", in.fired[len(in.fired)-1])
}

func (in *injector) AtQuantum(m *vm.Machine) {
	in.quanta++
	q := in.quanta
	p := in.p
	if p.killProc != "" && q >= p.killAt {
		proc := in.setup.Procs[p.killProc]
		switch {
		case proc == nil || proc.Exited:
			p.killProc = ""
		case in.anyTraced(p.killProc):
			// Kill only once the victim has trace history: a kill
			// before the first probe leaves nothing to diagnose. Until
			// then the kill stays pending and retries next quantum.
			proc.Machine.KillProcess(proc)
			in.c.met.kills.Inc()
			in.fire("q=%d kill -9 %s", q, p.killProc)
			p.killProc = ""
		}
	}
	for in.sigIdx < len(p.signals) && q >= p.signals[in.sigIdx].at {
		ev := p.signals[in.sigIdx]
		proc := in.setup.Procs[ev.proc]
		if proc != nil && !proc.Exited {
			t := in.victim(ev.proc, ev.nth)
			if t == nil {
				// No traced, interruptible victim yet — keep the event
				// pending and retry at the next quantum while the
				// process lives.
				break
			}
			if t.Proc.Machine.InjectSignal(t, ev.sig) {
				in.c.met.signals.Inc()
				in.fire("q=%d signal %s -> %s t%d", q, vm.SignalName(ev.sig), ev.proc, t.TID)
			}
		}
		in.sigIdx++
	}
	if p.unloadProc != "" && q >= p.unloadAt {
		if proc := in.setup.Procs[p.unloadProc]; proc != nil && !proc.Exited {
			for _, lm := range proc.Modules {
				if lm.Mod.Name == p.unloadModule && !lm.Unloaded {
					proc.Unload(lm)
					in.c.met.unloads.Inc()
					in.fire("q=%d unload %s from %s", q, p.unloadModule, p.unloadProc)
					break
				}
			}
		}
		p.unloadProc = ""
	}
}

// victim picks the nth eligible thread of a role, by sorted TID, so
// the choice is stable under map ordering. Eligible means
// interruptible (runnable or sleeping) and already tracing: a signal
// delivered before a thread's first probe yields an exception snap
// with no history — chaos without evidence, which is not this
// campaign's point.
func (in *injector) victim(role string, nth int) *vm.Thread {
	proc := in.setup.Procs[role]
	if proc == nil || proc.Exited {
		return nil
	}
	rt := in.setup.Runtimes[role]
	var tids []int
	for tid, t := range proc.Threads {
		if (t.State == vm.Runnable || t.State == vm.Sleeping) && t.PC != 0 &&
			(rt == nil || rt.Traced(tid)) {
			tids = append(tids, tid)
		}
	}
	if len(tids) == 0 {
		return nil
	}
	sort.Ints(tids)
	return proc.Threads[tids[nth%len(tids)]]
}

// anyTraced reports whether any live thread of the role has trace
// history.
func (in *injector) anyTraced(role string) bool {
	proc := in.setup.Procs[role]
	rt := in.setup.Runtimes[role]
	if proc == nil {
		return false
	}
	if rt == nil {
		return true
	}
	for tid, t := range proc.Threads {
		if t.State != vm.Exited && rt.Traced(tid) {
			return true
		}
	}
	return false
}

func (in *injector) AtRPC(from *vm.Thread, ep uint64, reply bool) vm.RPCFault {
	p := in.p
	var f vm.RPCFault
	if reply {
		in.rep++
		if p.dropRep[in.rep] {
			f.Drop = true
			in.c.met.rpcFaults.Inc()
			in.fire("rpc rep#%d drop (ep %d)", in.rep, ep)
		}
		return f
	}
	in.req++
	k := in.req
	if p.dropReq[k] {
		f.Drop = true
		in.c.met.rpcFaults.Inc()
		in.fire("rpc req#%d drop (ep %d)", k, ep)
	}
	if d, ok := p.delayReq[k]; ok {
		f.Delay = d
		in.c.met.rpcFaults.Inc()
		in.fire("rpc req#%d delay +%d (ep %d)", k, d, ep)
	}
	if p.dupReq[k] {
		f.Duplicate = true
		in.c.met.rpcFaults.Inc()
		in.fire("rpc req#%d duplicate (ep %d)", k, ep)
	}
	return f
}
