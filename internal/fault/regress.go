package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"traceback/internal/module"
	"traceback/internal/recon"
	"traceback/internal/snap"
)

// The regression corpus: every campaign failure (and a few always-on
// seed cases) is committed under snaps/regressions/ as the snaps +
// mapfiles of the trial plus a manifest entry carrying the repro line
// and the expected diagnosis. `tbfault replay` re-reconstructs every
// case and holds it to its manifest — the corpus is the campaign's
// long-term memory.

// Corpus expectations.
const (
	// ExpectFaultLine: every snap reconstructs and the resolved
	// faulting (or last-executed) lines equal the manifest's.
	ExpectFaultLine = "fault-line"
	// ExpectViolation: the case is seeded-known-bad — at least one
	// snap must FAIL to reconstruct. A replay where the corruption
	// goes undetected fails the gate: it means the checker lost its
	// teeth.
	ExpectViolation = "violation"
)

// CorpusCase is one committed regression case.
type CorpusCase struct {
	Name     string `json:"name"`
	Kind     string `json:"kind,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Seed     int64  `json:"seed"`
	// Repro reruns the campaign slice that produced the case.
	Repro string `json:"repro"`
	// Snaps and Maps are file names relative to the corpus dir (maps
	// live in its maps/ subdirectory).
	Snaps []string `json:"snaps"`
	Maps  []string `json:"maps"`
	// Expect is ExpectFaultLine or ExpectViolation.
	Expect string `json:"expect"`
	// FaultLines is the expected diagnosis (ExpectFaultLine only).
	FaultLines []string `json:"faultLines,omitempty"`
	// Detail documents what is wrong with a known-bad case.
	Detail string `json:"detail,omitempty"`
}

// Corpus is the manifest of snaps/regressions/.
type Corpus struct {
	V     int          `json:"v"`
	Cases []CorpusCase `json:"cases"`
}

// ManifestName is the corpus manifest file name.
const ManifestName = "manifest.json"

// LoadCorpus reads a corpus manifest from dir.
func LoadCorpus(dir string) (*Corpus, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("fault: corpus: %w", err)
	}
	var c Corpus
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("fault: corpus manifest: %w", err)
	}
	if c.V != 1 {
		return nil, fmt.Errorf("fault: corpus manifest version %d, want 1", c.V)
	}
	if len(c.Cases) == 0 {
		return nil, fmt.Errorf("fault: corpus has no cases")
	}
	return &c, nil
}

// Verify replays one corpus case from dir: loads its snaps and maps,
// reconstructs, and holds the result to the manifest's expectation.
func (cc *CorpusCase) Verify(dir string) error {
	ms := recon.NewMapSet()
	for _, name := range cc.Maps {
		mf, err := loadMapFile(filepath.Join(dir, "maps", name))
		if err != nil {
			return fmt.Errorf("case %s: %w", cc.Name, err)
		}
		ms.Add(mf)
	}
	var procs []*recon.ProcessTrace
	var failures []string
	for _, name := range cc.Snaps {
		s, err := loadSnapFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("case %s: %w", cc.Name, err)
		}
		pt, err := recon.Reconstruct(s, ms)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		procs = append(procs, pt)
	}

	switch cc.Expect {
	case ExpectFaultLine:
		if len(failures) > 0 {
			return fmt.Errorf("case %s: reconstruction failed: %s", cc.Name, strings.Join(failures, "; "))
		}
		got := faultLines(procs)
		if len(got) == 0 {
			got = lastLines(procs)
		}
		want := append([]string(nil), cc.FaultLines...)
		sort.Strings(want)
		if !equalStrings(got, want) {
			return fmt.Errorf("case %s: fault lines %v, manifest expects %v", cc.Name, got, want)
		}
		return nil
	case ExpectViolation:
		if len(failures) == 0 {
			return fmt.Errorf("case %s: seeded corruption went UNDETECTED: every snap reconstructed cleanly (%s)",
				cc.Name, cc.Detail)
		}
		return nil
	default:
		return fmt.Errorf("case %s: unknown expectation %q", cc.Name, cc.Expect)
	}
}

// VerifyCorpus replays every case; the returned error joins all
// failures.
func VerifyCorpus(dir string) error {
	c, err := LoadCorpus(dir)
	if err != nil {
		return err
	}
	var errs []string
	for i := range c.Cases {
		if err := c.Cases[i].Verify(dir); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("fault: corpus: %d of %d case(s) failed:\n  %s",
			len(errs), len(c.Cases), strings.Join(errs, "\n  "))
	}
	return nil
}

// CorruptModuleTable deterministically seeds the known-bad case: the
// snap's first module checksum is rewritten, so its DAG records
// resolve to a mapfile the warehouse does not have and
// reconstruction must fail. This models a snap whose module table
// was corrupted between crash and collection — exactly the class of
// damage the no-torn-records invariant exists to catch.
func CorruptModuleTable(s *snap.Snap) {
	if len(s.Modules) > 0 {
		s.Modules[0].Checksum = "deadbeefdeadbeefdeadbeefdeadbeef"
	}
}

// WriteArtifacts commits each violating trial's evidence bundle
// under dir — snaps, mapfiles, and the machine-readable repro line —
// so a campaign failure can be attached to a bug report or promoted
// into the committed corpus. Returns the bundle directories written.
func WriteArtifacts(dir string, arts []Artifact) ([]string, error) {
	var paths []string
	for _, a := range arts {
		name := fmt.Sprintf("%03d-%s-%s", a.TrialIndex, a.Kind, a.Scenario)
		if a.TrialIndex < 0 {
			name = a.Kind + "-" + a.Scenario
		}
		base := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Join(base, "maps"), 0o755); err != nil {
			return paths, err
		}
		for i, s := range a.Snaps {
			if err := saveSnapFile(filepath.Join(base, fmt.Sprintf("snap-%d.snap.json.gz", i+1)), s); err != nil {
				return paths, err
			}
		}
		for _, mf := range a.Maps {
			if err := saveMapFile(filepath.Join(base, "maps", mf.ModuleName+".map.json"), mf); err != nil {
				return paths, err
			}
		}
		repro := a.Repro + "\n"
		// When the harvest carries its recording, the bundle is also
		// replayable standalone: add the ready-to-run tbreplay line
		// (relative to the bundle directory).
		for i, s := range a.Snaps {
			if s.Nondet != nil {
				repro += fmt.Sprintf("tbreplay -maps maps snap-%d.snap.json.gz\n", i+1)
				break
			}
		}
		if err := os.WriteFile(filepath.Join(base, "repro.txt"), []byte(repro), 0o644); err != nil {
			return paths, err
		}
		paths = append(paths, base)
	}
	return paths, nil
}

func saveSnapFile(path string, s *snap.Snap) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.SaveCompressed(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func saveMapFile(path string, mf *module.MapFile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mf.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func loadSnapFile(path string) (*snap.Snap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return snap.LoadAuto(f)
}

func loadMapFile(path string) (*module.MapFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return module.LoadMapFile(f)
}
