package fault

import (
	"path/filepath"
	"testing"

	"traceback/internal/scenario"
)

// corpusDir locates the committed regression corpus.
func corpusDir(t *testing.T) string {
	t.Helper()
	root, err := scenario.Root()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(root, "snaps", "regressions")
}

// TestCommittedCorpus reconstructs every committed regression snap
// and holds it to its manifest: the good cases must resolve exactly
// their recorded faulting lines, and the seeded-known-bad case's
// corruption must be detected. This is the in-process mirror of
// `tbfault replay`.
func TestCommittedCorpus(t *testing.T) {
	dir := corpusDir(t)
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := 0, 0
	for i := range corpus.Cases {
		cc := &corpus.Cases[i]
		t.Run(cc.Name, func(t *testing.T) {
			if err := cc.Verify(dir); err != nil {
				t.Error(err)
			}
		})
		switch cc.Expect {
		case ExpectFaultLine:
			good++
			if len(cc.FaultLines) == 0 {
				t.Errorf("case %s: manifest has no expected fault lines", cc.Name)
			}
			if cc.Repro == "" {
				t.Errorf("case %s: manifest has no repro line", cc.Name)
			}
		case ExpectViolation:
			bad++
		}
	}
	if good < 3 {
		t.Errorf("corpus has %d fault-line case(s), want >= 3", good)
	}
	if bad == 0 {
		t.Error("corpus has no seeded-known-bad case")
	}
}

// TestCorpusCasesMatchTrials re-runs each good case's campaign slice
// from its recorded seed and requires the live trial to resolve the
// same fault lines the manifest promises — the repro line on a
// committed case is not decorative.
func TestCorpusCasesMatchTrials(t *testing.T) {
	dir := corpusDir(t)
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range corpus.Cases {
		cc := corpus.Cases[i]
		if cc.Expect != ExpectFaultLine {
			continue
		}
		t.Run(cc.Name, func(t *testing.T) {
			c, err := New(Config{Seed: cc.Seed})
			if err != nil {
				t.Fatal(err)
			}
			tr, snaps, _, err := c.Trial(cc.Kind, cc.Scenario)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Violations) > 0 {
				t.Fatalf("replayed trial violates: %+v", tr.Violations)
			}
			if len(snaps) != len(cc.Snaps) {
				t.Errorf("replayed trial harvested %d snap(s), corpus committed %d", len(snaps), len(cc.Snaps))
			}
			if !equalStrings(tr.FaultLines, cc.FaultLines) {
				t.Errorf("replayed fault lines %v, manifest %v", tr.FaultLines, cc.FaultLines)
			}
		})
	}
}
