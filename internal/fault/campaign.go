package fault

import (
	"hash/fnv"
	"math/rand"

	"traceback/internal/module"
	"traceback/internal/recon"
	"traceback/internal/snap"
)

// seedFor derives a trial's sub-seed from the campaign seed and the
// trial's identity (kind, scenario) — not its index — so rerunning a
// single (kind, scenario) slice reproduces exactly the trial the
// full campaign ran: the repro line on a regression snap is faithful.
func seedFor(seed int64, kind, scen string) int64 {
	h := fnv.New64a()
	h.Write([]byte(kind))
	h.Write([]byte{'/'})
	h.Write([]byte(scen))
	return subseed(seed, int(h.Sum64()&0x7FFFFFFF))
}

// Run executes the campaign: every (kind, scenario) trial in
// canonical order, then (when configured) the wire phase over the
// full harvest. The returned report is a pure function of the seed.
func (c *Campaign) Run() (*Report, error) {
	rep := &Report{
		Version:   1,
		Seed:      c.cfg.Seed,
		Kinds:     c.cfg.Kinds,
		Scenarios: c.cfg.Scenarios,
		Repro:     Repro(c.cfg.Seed, c.cfg.Kinds, c.cfg.Scenarios),
	}
	var harvest []*snap.Snap
	allMaps := recon.NewMapSet()
	idx := 0
	for _, kind := range c.cfg.Kinds {
		for _, scen := range scenariosFor(kind) {
			if !c.wantScenario(scen) {
				continue
			}
			sub := seedFor(c.cfg.Seed, kind, scen)
			tr, snaps, maps, err := c.runTrial(idx, kind, scen, sub)
			if err != nil {
				return nil, err
			}
			tr.Repro = Repro(c.cfg.Seed, []string{kind}, []string{scen})
			rep.Trials = append(rep.Trials, *tr)
			rep.Violations += len(tr.Violations)
			if len(tr.Violations) > 0 {
				c.artifacts = append(c.artifacts, Artifact{
					TrialIndex: idx, Scenario: scen, Kind: kind,
					Snaps: snaps, Maps: maps, Repro: tr.Repro,
				})
			}
			harvest = append(harvest, snaps...)
			for _, mf := range maps {
				allMaps.Add(mf)
			}
			idx++
		}
	}

	if c.cfg.Wire && len(harvest) > 0 {
		rng := rand.New(rand.NewSource(seedFor(c.cfg.Seed, KindCollect, "wire")))
		collectKind := false
		for _, k := range c.cfg.Kinds {
			if k == KindCollect {
				collectKind = true
			}
		}
		wr, viols, err := c.runWire(harvest, allMaps, rng, collectKind)
		if err != nil {
			return nil, err
		}
		rep.Wire = wr
		rep.Violations += len(viols)
		if len(viols) > 0 {
			// The wire phase's evidence is the full harvest; its maps
			// already ride the trial artifacts.
			c.artifacts = append(c.artifacts, Artifact{
				TrialIndex: -1, Scenario: "wire", Kind: KindCollect,
				Snaps: harvest, Repro: rep.Repro,
			})
		}
	}
	return rep, nil
}

// Artifacts returns the evidence bundles of violating trials
// (populated during Run).
func (c *Campaign) Artifacts() []Artifact { return c.artifacts }

// Trial runs the single (kind, scenario) slice of the campaign — the
// unit a regression repro line names — and returns its report row
// and harvest. Because sub-seeds derive from (seed, kind, scenario)
// rather than trial position, the trial is byte-identical to the
// same slice inside a full campaign run.
func (c *Campaign) Trial(kind, scen string) (*TrialReport, []*snap.Snap, []*module.MapFile, error) {
	tr, snaps, maps, err := c.runTrial(0, kind, scen, seedFor(c.cfg.Seed, kind, scen))
	if err != nil {
		return nil, nil, nil, err
	}
	tr.Repro = Repro(c.cfg.Seed, []string{kind}, []string{scen})
	return tr, snaps, maps, nil
}
