// Package fault is the fault-injection campaign orchestrator: it
// sweeps seeded faults — abrupt kills, signal storms, RPC transport
// perturbation, module unloads, trace-buffer-wrap stress, managed
// async interrupts, and mid-ingest collector kills — across the
// example scenarios, snaps every run, pushes the snaps through the
// collection plane into the warehouse, and asserts per-scenario
// reconstruction invariants.
//
// The campaign rides the repository's central determinism property:
// all nondeterminism is owned by the VM, so a fault schedule drawn
// from a single seed is exactly reproducible — the whole campaign
// (schedule, fault parameters, report) is a pure function of the
// seed. That is the Box-of-Pain-style co-design of injection and
// tracing: faults land at the same scheduling quanta and RPC
// transport points the tracer instruments, never at wall-clock
// times.
//
// Invariants checked per trial:
//
//   - no-torn-records: every snap reconstructs without error, even
//     after kill -9 mid-record (sub-buffer commit points bound the
//     loss, paper §3.2).
//   - sync-causal: SYNC sequence numbers are per-thread monotonic,
//     and every received sequence was sent by its logical-thread
//     peer (unless the peer's history wrapped away).
//   - fault-line: the faulting (or last-executed) block/line of the
//     victim resolves through the mapfiles to a source position.
//   - index-parity (wire phase): the warehouse index after
//     agent→daemon upload — with a daemon kill mid-ingest — is
//     byte-identical to a direct local ingest of the same snaps.
package fault

import (
	"fmt"
	"sort"

	"traceback/internal/telemetry"
)

// Fault kinds, in canonical campaign order.
const (
	KindKill     = "kill"      // kill -9 at a seeded scheduling quantum
	KindSignal   = "signal"    // storm of async signals at seeded quanta
	KindRPCDrop  = "rpc-drop"  // drop a seeded request or reply on the wire
	KindRPCDelay = "rpc-delay" // delay a seeded request past its successors (reorder)
	KindRPCDup   = "rpc-dup"   // duplicate a seeded request (at-least-once failure)
	KindUnload   = "unload"    // unload a module mid-call
	KindWrap     = "wrap"      // tiny trace buffers: wrap/truncation stress
	KindManaged  = "managed"   // async interrupt in the managed (mvm) runtime
	KindCollect  = "collect"   // kill the collection daemon mid-ingest (wire phase)
)

// AllKinds lists every kind in canonical order.
var AllKinds = []string{
	KindKill, KindSignal, KindRPCDrop, KindRPCDelay, KindRPCDup,
	KindUnload, KindWrap, KindManaged, KindCollect,
}

// ExpandKinds normalizes a user kind list: "all" (or empty) expands
// to every kind, "rpc" to the three transport kinds; the result is
// deduplicated and put in canonical order.
func ExpandKinds(kinds []string) ([]string, error) {
	want := map[string]bool{}
	if len(kinds) == 0 {
		kinds = []string{"all"}
	}
	for _, k := range kinds {
		switch k {
		case "all", "":
			for _, a := range AllKinds {
				want[a] = true
			}
		case "rpc":
			want[KindRPCDrop] = true
			want[KindRPCDelay] = true
			want[KindRPCDup] = true
		default:
			ok := false
			for _, a := range AllKinds {
				if k == a {
					ok = true
					break
				}
			}
			if !ok {
				return nil, fmt.Errorf("fault: unknown kind %q (have %v, plus \"rpc\", \"all\")", k, AllKinds)
			}
			want[k] = true
		}
	}
	var out []string
	for _, a := range AllKinds {
		if want[a] {
			out = append(out, a)
		}
	}
	return out, nil
}

// scenariosFor maps a kind to the scenarios it applies to. RPC and
// unload faults need the cross-machine world; wrap stresses it too
// because its server faults naturally under tiny buffers; managed
// runs its own mvm world and collect is a wire-phase fault.
func scenariosFor(kind string) []string {
	switch kind {
	case KindKill, KindSignal:
		return []string{"quickstart", "crossmachine", "deadlock"}
	case KindRPCDrop, KindRPCDelay, KindRPCDup, KindUnload, KindWrap:
		return []string{"crossmachine"}
	case KindManaged:
		return []string{"petshop"}
	case KindCollect:
		return nil // exercised in the wire phase, not as a VM trial
	}
	return nil
}

// Config parameterizes a campaign. The zero value is invalid: Seed
// must be set (0 is a valid seed, but pass Kinds explicitly).
type Config struct {
	// Seed determines the entire campaign: trial schedule, fault
	// parameters, and report are a pure function of it.
	Seed int64
	// Kinds is the expanded kind list (see ExpandKinds).
	Kinds []string
	// Scenarios restricts trials to these scenarios (nil: all that
	// apply to each kind).
	Scenarios []string
	// Record captures every trial's nondeterminism (kills, signals,
	// unloads, RPC verdicts, managed interrupts) and replay-verifies
	// the trial: the recording re-executed as the sole nondeterminism
	// source must reconstruct the harvest byte for byte. Violations
	// land under the replay-identical invariant, and the harvested
	// snaps carry their recording as an embedded section so any snap
	// committed as evidence replays standalone via tbreplay.
	Record bool
	// Wire enables the collection phase: spool → agent → daemon →
	// warehouse, with index parity asserted against a direct ingest.
	// Requires WorkDir.
	Wire bool
	// WorkDir holds the wire phase's spool and archives.
	WorkDir string
	// Telemetry receives the fault_* counters and flight events
	// (nil: a private registry).
	Telemetry *telemetry.Registry
}

// Campaign is one seeded fault-injection sweep.
type Campaign struct {
	cfg Config
	reg *telemetry.Registry
	rec *telemetry.Recorder
	met campaignMetrics

	// spans caches baseline quantum/RPC counts per scenario+config
	// class so fault times can be drawn inside the live window.
	spans map[string]baseline

	// artifacts holds the evidence bundles of violating trials, for
	// committing as regression snaps.
	artifacts []Artifact
}

type campaignMetrics struct {
	trials     *telemetry.Counter
	injected   *telemetry.Counter
	kills      *telemetry.Counter
	signals    *telemetry.Counter
	rpcFaults  *telemetry.Counter
	unloads    *telemetry.Counter
	interrupts *telemetry.Counter
	snaps      *telemetry.Counter
	violations *telemetry.Counter
	collKills  *telemetry.Counter
	replays    *telemetry.Counter
	replayDiv  *telemetry.Counter
}

// New builds a campaign.
func New(cfg Config) (*Campaign, error) {
	kinds, err := ExpandKinds(cfg.Kinds)
	if err != nil {
		return nil, err
	}
	cfg.Kinds = kinds
	if len(cfg.Scenarios) > 0 {
		sort.Strings(cfg.Scenarios)
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	c := &Campaign{
		cfg:   cfg,
		reg:   reg,
		rec:   reg.Recorder(256),
		spans: map[string]baseline{},
	}
	c.met = campaignMetrics{
		trials:     reg.Counter("fault_trials_total", "fault-injection trials executed"),
		injected:   reg.Counter("fault_injected_total", "fault events actually fired (all kinds)"),
		kills:      reg.Counter("fault_kills_total", "abrupt process kills injected"),
		signals:    reg.Counter("fault_signals_total", "async signals injected"),
		rpcFaults:  reg.Counter("fault_rpc_total", "RPC transport faults injected (drop/delay/dup)"),
		unloads:    reg.Counter("fault_unloads_total", "mid-call module unloads injected"),
		interrupts: reg.Counter("fault_managed_interrupts_total", "managed async interrupts injected"),
		snaps:      reg.Counter("fault_snaps_total", "snaps harvested from faulted runs"),
		violations: reg.Counter("fault_violations_total", "invariant violations detected"),
		collKills:  reg.Counter("fault_collect_kills_total", "collection daemons killed mid-ingest"),
		replays:    reg.Counter("fault_replays_total", "trial recordings replay-verified"),
		replayDiv:  reg.Counter("fault_replay_divergence_total", "trial replays that diverged from their recording"),
	}
	return c, nil
}

// Metrics returns the campaign's registry (fault_* counters).
func (c *Campaign) Metrics() *telemetry.Registry { return c.reg }

func (c *Campaign) wantScenario(name string) bool {
	if len(c.cfg.Scenarios) == 0 {
		return true
	}
	for _, s := range c.cfg.Scenarios {
		if s == name {
			return true
		}
	}
	return false
}
