package fault

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/recon"
	"traceback/internal/snap"
)

// crashProxy fronts the collection daemon and simulates a daemon
// crash: on the killAt-th upload it lets the inner handler finish —
// so the ingest's journal append lands, exactly the paper's abrupt
// death after durable work — then severs the connection without a
// response and goes dark until restarted. While dark, every
// connection is severed, which is what a killed daemon looks like to
// the agent: retryable transport errors, never a clean HTTP error.
type crashProxy struct {
	mu      sync.Mutex
	inner   http.Handler
	down    bool
	uploads int
	killAt  int
	killed  chan struct{}
}

func (cp *crashProxy) swap(h http.Handler) {
	cp.mu.Lock()
	cp.inner = h
	cp.down = false
	cp.mu.Unlock()
}

func (cp *crashProxy) sever(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

func (cp *crashProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cp.mu.Lock()
	if cp.down {
		cp.mu.Unlock()
		cp.sever(w)
		return
	}
	inner := cp.inner
	kill := false
	if r.Method == http.MethodPost && r.URL.Path == collect.PathSnap {
		cp.uploads++
		kill = cp.killAt > 0 && cp.uploads == cp.killAt
		if kill {
			cp.down = true
		}
	}
	cp.mu.Unlock()
	if kill {
		// The ingest completes (journal append lands) but the daemon
		// dies before answering — the agent must keep the snap
		// spooled and retry against the restarted daemon.
		rec := &discardResponse{}
		inner.ServeHTTP(rec, r)
		close(cp.killed)
		cp.sever(w)
		return
	}
	inner.ServeHTTP(w, r)
}

// discardResponse swallows the response the dying daemon never sent.
type discardResponse struct{ h http.Header }

func (d *discardResponse) Header() http.Header {
	if d.h == nil {
		d.h = http.Header{}
	}
	return d.h
}
func (d *discardResponse) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponse) WriteHeader(int)             {}

// runWire pushes every campaign snap through the collection plane —
// spool → agent → daemon → warehouse — with a seeded daemon kill
// mid-ingest when the collect kind is scheduled, and asserts the
// warehouse index is byte-identical to a direct local ingest.
func (c *Campaign) runWire(snaps []*snap.Snap, maps recon.MapResolver, rng *rand.Rand, collectKind bool) (*WireReport, []Violation, error) {
	work := c.cfg.WorkDir
	if work == "" {
		return nil, nil, fmt.Errorf("fault: wire phase needs Config.WorkDir")
	}
	var viols []Violation
	violate := func(inv, detail string) {
		viols = append(viols, Violation{Invariant: inv, Detail: detail})
		c.met.violations.Inc()
		c.rec.Record(0, "fault-violation", inv+": "+detail)
	}

	// Spool everything; content addressing collapses duplicates, and
	// the agent drains in sorted-hash order, so the upload sequence
	// is deterministic.
	spool := filepath.Join(work, "spool")
	bySum := map[string]*snap.Snap{}
	for _, s := range snaps {
		sum, _, err := archive.ChecksumSnap(s)
		if err != nil {
			return nil, nil, err
		}
		bySum[sum] = s
		if _, err := collect.Spool(spool, s); err != nil {
			return nil, nil, err
		}
	}
	sums := make([]string, 0, len(bySum))
	for sum := range bySum {
		sums = append(sums, sum)
	}
	sort.Strings(sums)
	wr := &WireReport{Spooled: len(sums)}

	// Direct local ingest: the oracle the wire path must match.
	direct, err := archive.Open(filepath.Join(work, "direct"))
	if err != nil {
		return nil, nil, err
	}
	for _, sum := range sums {
		s := bySum[sum]
		if _, err := direct.IngestUnique(s, archive.SignSnap(s, maps)); err != nil {
			direct.Close()
			return nil, nil, err
		}
	}
	directIndex, err := direct.IndexBytes()
	if err != nil {
		direct.Close()
		return nil, nil, err
	}
	if err := direct.Close(); err != nil {
		return nil, nil, err
	}

	// The wire warehouse and its daemon, behind the crash proxy.
	wareDir := filepath.Join(work, "warehouse")
	arch1, err := archive.Open(wareDir)
	if err != nil {
		return nil, nil, err
	}
	srvOpts := collect.ServerOptions{Maps: maps}
	proxy := &crashProxy{inner: collect.NewServer(arch1, srvOpts).Handler(), killed: make(chan struct{})}
	if collectKind && len(sums) >= 2 {
		proxy.killAt = 1 + rng.Intn(len(sums))
	}
	wr.KillAtUpload = proxy.killAt

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: proxy}
	go hs.Serve(l)
	defer hs.Close()

	// Restart path: when the kill fires, the dead daemon's archive is
	// abandoned without Close — crash semantics — and a fresh daemon
	// opens the same directory, recovering state by journal replay.
	final := arch1
	restarted := make(chan error, 1)
	if proxy.killAt > 0 {
		go func() {
			select {
			case <-proxy.killed:
			case <-time.After(2 * time.Minute):
				restarted <- fmt.Errorf("fault: daemon kill never fired")
				return
			}
			c.met.collKills.Inc()
			c.rec.Record(0, "fault-collect-kill", fmt.Sprintf("daemon killed on upload %d", proxy.killAt))
			arch2, err := archive.Open(wareDir)
			if err != nil {
				restarted <- err
				return
			}
			final = arch2
			proxy.swap(collect.NewServer(arch2, srvOpts).Handler())
			restarted <- nil
		}()
	}

	agent := collect.NewAgent(spool, "http://"+l.Addr().String(), collect.AgentOptions{
		Client:      &http.Client{Timeout: 30 * time.Second},
		BackoffBase: time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        rng.Int63() | 1,
		Telemetry:   c.reg,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := agent.Drain(ctx); err != nil {
		return nil, nil, fmt.Errorf("fault: agent drain: %w", err)
	}
	if proxy.killAt > 0 {
		if err := <-restarted; err != nil {
			return nil, nil, err
		}
	}

	wireIndex, err := final.IndexBytes()
	if err != nil {
		return nil, nil, err
	}
	wr.Blobs = final.NumBlobs()
	wr.Buckets = len(final.Buckets())
	if err := final.Close(); err != nil {
		return nil, nil, err
	}

	wr.IndexParity = bytes.Equal(wireIndex, directIndex)
	if !wr.IndexParity {
		violate(InvIndexParity, fmt.Sprintf("wire index (%d bytes) differs from direct ingest (%d bytes) after %d upload(s)",
			len(wireIndex), len(directIndex), wr.Spooled))
	}

	// Leave the work dir inspectable on violation, clean otherwise.
	if len(viols) == 0 {
		os.RemoveAll(filepath.Join(work, "direct"))
	}
	return wr, viols, nil
}
