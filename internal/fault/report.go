package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// TrialReport is one trial's row in the campaign report. Every field
// is a pure function of the campaign seed — no clocks, no addresses,
// no map-ordered output — so the whole report is byte-reproducible.
type TrialReport struct {
	Index    int    `json:"index"`
	Scenario string `json:"scenario"`
	Kind     string `json:"kind"`
	SubSeed  int64  `json:"subSeed"`
	// Planned is the fault schedule drawn from the sub-seed; Fired is
	// what actually landed (a planned signal may find no eligible
	// victim).
	Planned []string `json:"planned"`
	Fired   []string `json:"fired,omitempty"`
	// Snaps/Events count the harvest; Truncated reports wrapped or
	// abruptly-lost history in any thread.
	Snaps     int  `json:"snaps"`
	Events    int  `json:"events"`
	Truncated bool `json:"truncated,omitempty"`
	// FaultLines are the resolved faulting (or last-executed)
	// source positions, sorted.
	FaultLines []string    `json:"faultLines,omitempty"`
	Violations []Violation `json:"violations,omitempty"`
	// Replayed reports that the trial's recording re-executed to a
	// byte-identical harvest (campaigns with Record on);
	// ReplayDivergence carries the machine-readable report when it
	// did not.
	Replayed         bool   `json:"replayed,omitempty"`
	ReplayDivergence string `json:"replayDivergence,omitempty"`
	// Repro reruns exactly this trial's campaign slice.
	Repro string `json:"repro"`
}

// WireReport describes the collection phase.
type WireReport struct {
	// Spooled counts distinct snaps entering the agent spool
	// (content-addressed, so campaign-wide duplicates collapse).
	Spooled int `json:"spooled"`
	// KillAtUpload is the 1-based upload on which the daemon was
	// killed mid-ingest (0: no collect fault scheduled).
	KillAtUpload int `json:"killAtUpload"`
	// Blobs/Buckets describe the final warehouse.
	Blobs   int `json:"blobs"`
	Buckets int `json:"buckets"`
	// IndexParity is the invariant: warehouse index after the wire
	// path equals a direct local ingest, byte for byte.
	IndexParity bool `json:"indexParity"`
}

// Report is a whole campaign's deterministic result.
type Report struct {
	Version    int           `json:"version"`
	Seed       int64         `json:"seed"`
	Kinds      []string      `json:"kinds"`
	Scenarios  []string      `json:"scenarios,omitempty"`
	Trials     []TrialReport `json:"trials"`
	Wire       *WireReport   `json:"wire,omitempty"`
	Violations int           `json:"violations"`
	Repro      string        `json:"repro"`
}

// Repro builds the machine-readable repro line for a seed and kind
// set — the line committed next to every regression snap.
func Repro(seed int64, kinds, scenarios []string) string {
	line := fmt.Sprintf("tbfault run -seed %d -kinds %s", seed, strings.Join(kinds, ","))
	if len(scenarios) > 0 {
		line += " -scenarios " + strings.Join(scenarios, ",")
	}
	return line
}

// Marshal renders the report as stable, indented JSON.
func (r *Report) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return buf.Bytes(), nil
}
