package fault

import (
	"fmt"
	"math/rand"

	"traceback/internal/module"
	"traceback/internal/mvm"
	"traceback/internal/recon"
	"traceback/internal/scenario"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
	"traceback/internal/workload"
)

// wrapConfig is the tiny-buffer runtime configuration the wrap kind
// uses: small enough that the cross-machine server wraps its buffer
// several times before faulting, exercising the committed-sub-buffer
// recovery path.
func wrapConfig() *tbrt.Config {
	return &tbrt.Config{BufferWords: 128, SubBuffers: 4, Policy: tbrt.DefaultPolicy()}
}

func buildScenario(name string, opts scenario.Options) (*scenario.Setup, error) {
	for _, b := range scenario.Builders {
		if b.Name == name {
			return b.Build(opts)
		}
	}
	return nil, fmt.Errorf("fault: unknown scenario %q", name)
}

// baselineFor measures (and caches) the uninjected span of a
// scenario under a config class, so fault times land inside it.
func (c *Campaign) baselineFor(scen string, opts scenario.Options) (baseline, error) {
	key := scen
	if opts.Config != nil {
		key += "/wrap"
	}
	if bl, ok := c.spans[key]; ok {
		return bl, nil
	}
	setup, err := buildScenario(scen, opts)
	if err != nil {
		return baseline{}, err
	}
	ct := &counter{}
	setup.World.SetInjector(ct)
	setup.Run(0)
	bl := baseline{quanta: ct.quanta, rpcCalls: ct.calls}
	c.spans[key] = bl
	return bl, nil
}

// Artifact is the evidence bundle of one violating trial: the snaps
// and mapfiles to commit as a regression case, plus the repro line.
type Artifact struct {
	TrialIndex int
	Scenario   string
	Kind       string
	Snaps      []*snap.Snap
	Maps       []*module.MapFile
	Repro      string
}

// runTrial executes one (kind, scenario) trial under its sub-seed and
// returns the report row plus the harvest for the wire phase.
func (c *Campaign) runTrial(idx int, kind, scen string, sub int64) (*TrialReport, []*snap.Snap, []*module.MapFile, error) {
	if kind == KindManaged {
		return c.runManaged(idx, sub)
	}
	opts := scenario.Options{}
	if kind == KindWrap {
		opts.Config = wrapConfig()
	}
	bl, err := c.baselineFor(scen, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	setup, err := buildScenario(scen, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	roles := sortedRoles(setup.Procs)
	rng := rand.New(rand.NewSource(sub))
	p := buildPlan(kind, roles, bl, rng)
	in := &injector{c: c, setup: setup, p: p}
	setup.World.SetInjector(in)
	c.met.trials.Inc()
	setup.Run(0)

	// The deadlock scenario's hang detector (and any runtime that
	// registered with a service) gets its post-run heartbeat check,
	// as in the uninjected scenario.
	if setup.Service != nil && len(roles) > 0 {
		m := setup.Procs[roles[0]].Machine
		m.SetClock(m.Clock() + 200_000)
		setup.Service.CheckStatus()
	}

	// Harvest: policy snaps from each runtime, plus a post-mortem
	// pull from every process — the collect path a fleet agent runs
	// after the incident. The post-mortems matter beyond kill -9:
	// cross-machine causality checks need each peer's final SYNC
	// history, not just the mid-flight exception snaps.
	var snaps []*snap.Snap
	wraps := 0
	for _, role := range roles {
		rt := setup.Runtimes[role]
		snaps = append(snaps, rt.Snaps()...)
		if pm := rt.PostMortemSnap(); pm != nil {
			snaps = append(snaps, pm)
		}
		wraps += rt.Wraps()
	}
	c.met.snaps.Add(uint64(len(snaps)))

	tr := &TrialReport{
		Index:    idx,
		Scenario: scen,
		Kind:     kind,
		SubSeed:  sub,
		Planned:  p.schedule,
		Fired:    in.fired,
		Snaps:    len(snaps),
	}
	ms := recon.NewMapSet(setup.Maps...)
	c.checkTrial(tr, snaps, ms, wraps)
	return tr, snaps, setup.Maps, nil
}

// runManaged executes the managed-runtime trial: the PetShop workload
// under an asynchronous interrupt at a seeded quantum — the managed
// analog of a signal storm, snapped by the uncaught-exception policy.
func (c *Campaign) runManaged(idx int, sub int64) (*TrialReport, []*snap.Snap, []*module.MapFile, error) {
	mod := workload.PetShopModule()
	im, mf, err := mvm.Instrument(mod, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	const workers, requests = 2, 40
	build := func() (*mvm.VM, []*mvm.MThread, error) {
		world := vm.NewWorld(88)
		mach := world.NewMachine("petshop-host", 0)
		v := mvm.New(mach, nil, "petshop", mvm.RuntimeConfig{SnapOnUncaught: true})
		if _, err := v.Load(im); err != nil {
			return nil, nil, err
		}
		var threads []*mvm.MThread
		for i := 0; i < workers; i++ {
			th, err := v.Start("worker", requests)
			if err != nil {
				return nil, nil, err
			}
			threads = append(threads, th)
		}
		return v, threads, nil
	}
	allDone := func(threads []*mvm.MThread) func() bool {
		return func() bool {
			for _, th := range threads {
				if th.State != mvm.MDone {
					return false
				}
			}
			return true
		}
	}

	// Baseline span in managed quanta.
	key := "petshop"
	bl, ok := c.spans[key]
	if !ok {
		v, threads, err := build()
		if err != nil {
			return nil, nil, nil, err
		}
		var q uint64
		v.OnQuantum = func(*mvm.VM) { q++ }
		v.Run(1<<30, allDone(threads))
		bl = baseline{quanta: q}
		c.spans[key] = bl
	}

	rng := rand.New(rand.NewSource(sub))
	at := window(rng, bl.quanta)
	victim := 1 + rng.Intn(workers)
	v, threads, err := build()
	if err != nil {
		return nil, nil, nil, err
	}
	tr := &TrialReport{
		Index:    idx,
		Scenario: "petshop",
		Kind:     KindManaged,
		SubSeed:  sub,
		Planned:  []string{fmt.Sprintf("q=%d interrupt petshop t%d", at, victim)},
	}
	var q uint64
	fired := false
	v.OnQuantum = func(v *mvm.VM) {
		q++
		if !fired && q >= at {
			fired = true
			v.Interrupt(victim, mvm.ExcInterrupted)
			c.met.interrupts.Inc()
			c.met.injected.Inc()
			tr.Fired = append(tr.Fired, fmt.Sprintf("q=%d interrupt petshop t%d", q, victim))
			c.rec.Record(0, "fault-inject", tr.Fired[len(tr.Fired)-1])
		}
	}
	c.met.trials.Inc()
	v.Run(1<<30, allDone(threads))

	snaps := v.Runtime().Snaps()
	c.met.snaps.Add(uint64(len(snaps)))
	tr.Snaps = len(snaps)
	maps := []*module.MapFile{mf}
	c.checkTrial(tr, snaps, recon.NewMapSet(maps...), 0)
	return tr, snaps, maps, nil
}
