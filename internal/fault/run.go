package fault

import (
	"fmt"
	"math/rand"

	"traceback/internal/module"
	"traceback/internal/mvm"
	"traceback/internal/recon"
	"traceback/internal/replay"
	"traceback/internal/scenario"
	"traceback/internal/snap"
)

func buildScenario(name string, opts scenario.Options) (*scenario.Setup, error) {
	for _, b := range scenario.Builders {
		if b.Name == name {
			return b.Build(opts)
		}
	}
	return nil, fmt.Errorf("fault: unknown scenario %q", name)
}

// baselineFor measures (and caches) the uninjected span of a
// scenario under a config class, so fault times land inside it.
func (c *Campaign) baselineFor(scen string, opts scenario.Options) (baseline, error) {
	key := scen
	if opts.Config != nil {
		key += "/wrap"
	}
	if bl, ok := c.spans[key]; ok {
		return bl, nil
	}
	setup, err := buildScenario(scen, opts)
	if err != nil {
		return baseline{}, err
	}
	ct := &counter{}
	setup.World.SetInjector(ct)
	setup.Run(0)
	bl := baseline{quanta: ct.quanta, rpcCalls: ct.calls}
	c.spans[key] = bl
	return bl, nil
}

// Artifact is the evidence bundle of one violating trial: the snaps
// and mapfiles to commit as a regression case, plus the repro line.
type Artifact struct {
	TrialIndex int
	Scenario   string
	Kind       string
	Snaps      []*snap.Snap
	Maps       []*module.MapFile
	Repro      string
}

// runTrial executes one (kind, scenario) trial under its sub-seed and
// returns the report row plus the harvest for the wire phase.
func (c *Campaign) runTrial(idx int, kind, scen string, sub int64) (*TrialReport, []*snap.Snap, []*module.MapFile, error) {
	if kind == KindManaged {
		return c.runManaged(idx, sub)
	}
	opts := scenario.Options{}
	if kind == KindWrap {
		// The tiny-buffer configuration: small enough that the
		// cross-machine server wraps its buffer several times before
		// faulting, exercising the committed-sub-buffer recovery path.
		// Shared with replay so Wrap recordings rebuild the same world.
		opts = replay.WrapOptions()
	}
	bl, err := c.baselineFor(scen, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	setup, err := buildScenario(scen, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	roles := sortedRoles(setup.Procs)
	rng := rand.New(rand.NewSource(sub))
	p := buildPlan(kind, roles, bl, rng)
	in := &injector{c: c, setup: setup, p: p}
	setup.World.SetInjector(in)
	var rec *replay.Recorder
	if c.cfg.Record {
		rec = replay.NewRecorder(0)
		setup.World.SetRecorder(rec)
	}
	c.met.trials.Inc()
	setup.Run(0)

	// Harvest: the service heartbeat (hang detection), then policy
	// snaps from each runtime plus a post-mortem pull from every
	// process — the collect path a fleet agent runs after the
	// incident. The post-mortems matter beyond kill -9: cross-machine
	// causality checks need each peer's final SYNC history, not just
	// the mid-flight exception snaps. Shared with replay so a
	// replayed trial's harvest is positionally comparable.
	snaps := replay.HarvestTrial(setup)
	wraps := 0
	for _, role := range roles {
		wraps += setup.Runtimes[role].Wraps()
	}
	c.met.snaps.Add(uint64(len(snaps)))

	tr := &TrialReport{
		Index:    idx,
		Scenario: scen,
		Kind:     kind,
		SubSeed:  sub,
		Planned:  p.schedule,
		Fired:    in.fired,
		Snaps:    len(snaps),
	}
	ms := recon.NewMapSet(setup.Maps...)
	c.checkTrial(tr, snaps, ms, wraps)
	if rec != nil {
		c.replayVerify(tr, rec.Log(scen, kind == KindWrap, true), snaps)
	}
	return tr, snaps, setup.Maps, nil
}

// replayVerify re-executes a recorded trial with the log as the sole
// nondeterminism source and holds the replayed harvest to
// byte-identity with the original — the replay-identical invariant.
// On success the harvest is stamped with its recording so committed
// evidence replays standalone.
func (c *Campaign) replayVerify(tr *TrialReport, l *replay.Log, snaps []*snap.Snap) {
	violate := func(detail string) {
		tr.Violations = append(tr.Violations, Violation{Invariant: InvReplay, Detail: detail})
		c.met.violations.Inc()
		c.rec.Record(0, "fault-violation", InvReplay+": "+detail)
	}
	c.met.replays.Inc()
	res, err := replay.Verify(l, snaps)
	if err != nil {
		c.met.replayDiv.Inc()
		violate(fmt.Sprintf("replay failed: %v", err))
		return
	}
	if res.Divergence != nil {
		c.met.replayDiv.Inc()
		tr.ReplayDivergence = res.Divergence.Error()
		violate(tr.ReplayDivergence)
		return
	}
	if !res.Identical {
		c.met.replayDiv.Inc()
		violate("replay produced a different harvest")
		return
	}
	tr.Replayed = true
	l.Attach(snaps)
}

// runManaged executes the managed-runtime trial: the PetShop workload
// under an asynchronous interrupt at a seeded quantum — the managed
// analog of a signal storm, snapped by the uncaught-exception policy.
// The world is built by replay.BuildPetShop so a recording of this
// trial replays against the identical world.
func (c *Campaign) runManaged(idx int, sub int64) (*TrialReport, []*snap.Snap, []*module.MapFile, error) {
	// Baseline span in managed quanta.
	key := replay.ManagedScenario
	bl, ok := c.spans[key]
	if !ok {
		v, threads, _, err := replay.BuildPetShop()
		if err != nil {
			return nil, nil, nil, err
		}
		var q uint64
		v.OnQuantum = func(*mvm.VM) { q++ }
		v.Run(1<<30, replay.PetShopDone(threads))
		bl = baseline{quanta: q}
		c.spans[key] = bl
	}

	rng := rand.New(rand.NewSource(sub))
	at := window(rng, bl.quanta)
	victim := 1 + rng.Intn(replay.PetShopWorkers)
	v, threads, mf, err := replay.BuildPetShop()
	if err != nil {
		return nil, nil, nil, err
	}
	tr := &TrialReport{
		Index:    idx,
		Scenario: replay.ManagedScenario,
		Kind:     KindManaged,
		SubSeed:  sub,
		Planned:  []string{fmt.Sprintf("q=%d interrupt petshop t%d", at, victim)},
	}
	var rec *replay.Recorder
	if c.cfg.Record {
		rec = replay.NewRecorder(0)
	}
	var q uint64
	fired := false
	v.OnQuantum = func(v *mvm.VM) {
		q++
		if rec != nil {
			rec.ManagedQuantum(q, v.Machine)
		}
		if !fired && q >= at {
			fired = true
			v.Interrupt(victim, mvm.ExcInterrupted)
			if rec != nil {
				rec.ManagedInterrupt(q, victim, mvm.ExcInterrupted)
			}
			c.met.interrupts.Inc()
			c.met.injected.Inc()
			tr.Fired = append(tr.Fired, fmt.Sprintf("q=%d interrupt petshop t%d", q, victim))
			c.rec.Record(0, "fault-inject", tr.Fired[len(tr.Fired)-1])
		}
	}
	c.met.trials.Inc()
	v.Run(1<<30, replay.PetShopDone(threads))

	snaps := v.Runtime().Snaps()
	c.met.snaps.Add(uint64(len(snaps)))
	tr.Snaps = len(snaps)
	maps := []*module.MapFile{mf}
	c.checkTrial(tr, snaps, recon.NewMapSet(maps...), 0)
	if rec != nil {
		c.replayVerify(tr, rec.Log(replay.ManagedScenario, false, true), snaps)
	}
	return tr, snaps, maps, nil
}
