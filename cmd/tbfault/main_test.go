package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"traceback/internal/fault"
	"traceback/internal/scenario"
	"traceback/internal/snap"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := scenario.Root()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRunReportDeterminism: the CLI's JSON report for a campaign
// slice is byte-identical across runs of the same seed.
func TestRunReportDeterminism(t *testing.T) {
	runOnce := func() []byte {
		out := filepath.Join(t.TempDir(), "report.json")
		var stdout, stderr bytes.Buffer
		code := run([]string{"run", "-seed", "9", "-kinds", "kill,signal",
			"-scenarios", "quickstart", "-report", "json", "-out", out}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Errorf("same seed, different reports:\n%s\n---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"repro": "tbfault run -seed 9`)) {
		t.Errorf("report lacks repro line:\n%s", a)
	}
}

// TestReplayCommittedCorpus: the committed regression corpus passes
// replay — every snap reconstructs to its recorded faulting line and
// the known-bad case is detected.
func TestReplayCommittedCorpus(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "snaps", "regressions")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"replay", "-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("replay exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "torn-module-table") {
		t.Errorf("replay output does not mention the known-bad case:\n%s", stdout.String())
	}
}

// copyCorpus clones the committed corpus into a temp dir so a test
// can tamper with it.
func copyCorpus(t *testing.T) string {
	t.Helper()
	src := filepath.Join(repoRoot(t), "snaps", "regressions")
	dst := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dst, "maps"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"", "maps"} {
		entries, err := os.ReadDir(filepath.Join(src, sub))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			b, err := os.ReadFile(filepath.Join(src, sub, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, sub, e.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dst
}

// TestSeededViolationFailsGate proves the replay gate has teeth, in
// both directions: corrupting a good case's snap turns replay red,
// and silently "fixing" the known-bad case (so its corruption is no
// longer detected) turns replay red too.
func TestSeededViolationFailsGate(t *testing.T) {
	t.Run("corrupted-good-case", func(t *testing.T) {
		dir := copyCorpus(t)
		corpus, err := fault.LoadCorpus(dir)
		if err != nil {
			t.Fatal(err)
		}
		var victim string
		for _, cc := range corpus.Cases {
			if cc.Expect == fault.ExpectFaultLine {
				victim = cc.Snaps[0]
				break
			}
		}
		if victim == "" {
			t.Fatal("no good case in corpus")
		}
		corruptSnapFile(t, filepath.Join(dir, victim))
		var stdout, stderr bytes.Buffer
		if code := run([]string{"replay", "-dir", dir}, &stdout, &stderr); code == 0 {
			t.Fatalf("replay passed over a corrupted snap\nstdout: %s", stdout.String())
		}
	})

	t.Run("undetected-known-bad", func(t *testing.T) {
		dir := copyCorpus(t)
		corpus, err := fault.LoadCorpus(dir)
		if err != nil {
			t.Fatal(err)
		}
		var badFile, goodFile string
		for _, cc := range corpus.Cases {
			switch cc.Expect {
			case fault.ExpectViolation:
				badFile = cc.Snaps[0]
			case fault.ExpectFaultLine:
				if cc.Scenario == "crossmachine" && goodFile == "" {
					goodFile = cc.Snaps[0]
				}
			}
		}
		if badFile == "" || goodFile == "" {
			t.Fatal("corpus lacks a known-bad or crossmachine case")
		}
		// Replace the corrupted snap with a clean one: the expected
		// violation is no longer detected, so the gate must go red.
		b, err := os.ReadFile(filepath.Join(dir, goodFile))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, badFile), b, 0o644); err != nil {
			t.Fatal(err)
		}
		var stdout, stderr bytes.Buffer
		if code := run([]string{"replay", "-dir", dir}, &stdout, &stderr); code == 0 {
			t.Fatal("replay passed though the seeded corruption went undetected")
		}
		if !strings.Contains(stderr.String(), "UNDETECTED") {
			t.Errorf("stderr does not explain the undetected corruption: %s", stderr.String())
		}
	})
}

// corruptSnapFile rewrites a committed snap with a corrupted module
// table (the same seeded corruption genregress uses).
func corruptSnapFile(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := snap.LoadAuto(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	fault.CorruptModuleTable(s)
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCompressed(out); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUsageErrors: bad invocations exit 2 without running anything.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"run", "-kinds", "nope"},
		{"run", "-report", "xml"},
		{"run", "stray"},
	}
	for _, args := range cases {
		var stderr bytes.Buffer
		code := run(args, io.Discard, &stderr)
		if code == 0 {
			t.Errorf("run(%v) = 0, want nonzero", args)
		}
	}
}
