// tbfault is the fault-injection campaign orchestrator: it sweeps
// seeded faults (kill -9, signal storms, RPC drop/delay/duplication,
// module unloads, tiny-buffer wrap stress, managed interrupts, and a
// mid-ingest collection-daemon kill) across the example scenarios,
// snaps every run, pushes the harvest through the collection plane,
// and asserts the reconstruction invariants. The whole campaign —
// schedule, parameters, report — is a pure function of -seed.
//
//	tbfault run -seed 1 -kinds kill,rpc          # one campaign slice
//	tbfault run -seed 1 -kinds all -report json  # full campaign, JSON report
//	tbfault replay -dir snaps/regressions        # verify the committed corpus
//
// `run` records every trial's nondeterminism and replay-verifies it
// byte for byte (disable with -record=false); it exits 1 when any
// invariant is violated, writing each violating trial's snaps,
// mapfiles, and repro lines (campaign slice + standalone tbreplay)
// under -regress so the failure can be committed as a regression
// case. `replay` exits 1 when any committed case no longer matches
// its manifest — including when a seeded-known-bad case's corruption
// goes undetected.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"traceback/internal/fault"
	"traceback/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: tbfault run|replay [flags]   (tbfault <cmd> -h for flags)")
		return 2
	}
	switch args[0] {
	case "run":
		return runCampaign(args[1:], stdout, stderr)
	case "replay":
		return runReplay(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "tbfault: unknown command %q (want run or replay)\n", args[0])
		return 2
	}
}

func runCampaign(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tbfault run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "campaign seed; the entire schedule and report derive from it")
	kinds := fs.String("kinds", "all", "comma-separated fault kinds (kill,signal,rpc-drop,rpc-delay,rpc-dup,unload,wrap,managed,collect; \"rpc\" expands to the transport kinds, \"all\" to everything)")
	scenarios := fs.String("scenarios", "", "restrict trials to these scenarios (comma-separated; empty: all that apply)")
	report := fs.String("report", "text", "report format: text or json")
	out := fs.String("out", "", "write the report to this file instead of stdout")
	work := fs.String("work", "", "wire-phase work directory (empty: a temp dir, removed when clean)")
	regress := fs.String("regress", "", "write each violating trial's snaps+maps+repro under this directory")
	record := fs.Bool("record", true, "record each trial's nondeterminism and replay-verify it byte for byte; harvested snaps carry the recording for tbreplay")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tbfault:", err)
		return 1
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "tbfault: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *report != "text" && *report != "json" {
		fmt.Fprintf(stderr, "tbfault: -report %q (want text or json)\n", *report)
		return 2
	}

	kindList, err := fault.ExpandKinds(splitList(*kinds))
	if err != nil {
		return fail(err)
	}
	wire := false
	for _, k := range kindList {
		if k == fault.KindCollect {
			wire = true
		}
	}
	workDir := *work
	if wire && workDir == "" {
		workDir, err = os.MkdirTemp("", "tbfault-")
		if err != nil {
			return fail(err)
		}
		defer os.RemoveAll(workDir)
	}

	c, err := fault.New(fault.Config{
		Seed:      *seed,
		Kinds:     kindList,
		Scenarios: splitList(*scenarios),
		Record:    *record,
		Wire:      wire,
		WorkDir:   workDir,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		return fail(err)
	}
	rep, err := c.Run()
	if err != nil {
		return fail(err)
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	if *report == "json" {
		b, err := rep.Marshal()
		if err != nil {
			return fail(err)
		}
		if _, err := w.Write(b); err != nil {
			return fail(err)
		}
	} else {
		printText(w, rep)
	}

	if rep.Violations > 0 {
		if *regress != "" {
			paths, err := fault.WriteArtifacts(*regress, c.Artifacts())
			if err != nil {
				return fail(err)
			}
			for _, p := range paths {
				fmt.Fprintln(stderr, "tbfault: regression evidence:", p)
			}
		}
		fmt.Fprintf(stderr, "tbfault: %d invariant violation(s); repro: %s\n", rep.Violations, rep.Repro)
		return 1
	}
	return 0
}

func runReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tbfault replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", filepath.Join("snaps", "regressions"), "regression corpus directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "tbfault: unexpected arguments %v\n", fs.Args())
		return 2
	}
	corpus, err := fault.LoadCorpus(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "tbfault:", err)
		return 1
	}
	bad := 0
	for i := range corpus.Cases {
		cc := &corpus.Cases[i]
		if err := cc.Verify(*dir); err != nil {
			fmt.Fprintln(stderr, "tbfault: FAIL", err)
			bad++
			continue
		}
		what := fmt.Sprintf("fault lines %v", cc.FaultLines)
		if cc.Expect == fault.ExpectViolation {
			what = "corruption detected"
		}
		fmt.Fprintf(stdout, "ok   %-20s %s\n", cc.Name, what)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "tbfault: replay: %d of %d case(s) failed\n", bad, len(corpus.Cases))
		return 1
	}
	fmt.Fprintf(stdout, "replay: %d case(s) match their manifest\n", len(corpus.Cases))
	return 0
}

func printText(w io.Writer, rep *fault.Report) {
	fmt.Fprintf(w, "campaign seed %d · %d trial(s) · %d violation(s)\n", rep.Seed, len(rep.Trials), rep.Violations)
	for _, tr := range rep.Trials {
		status := "ok"
		if len(tr.Violations) > 0 {
			status = fmt.Sprintf("FAIL(%d)", len(tr.Violations))
		}
		fmt.Fprintf(w, "  %-8s %-10s %-12s snaps %-3d events %-6d %s\n",
			status, tr.Kind, tr.Scenario, tr.Snaps, tr.Events, strings.Join(tr.FaultLines, " "))
		for _, v := range tr.Violations {
			fmt.Fprintf(w, "           %s: %s\n", v.Invariant, v.Detail)
		}
	}
	if rep.Wire != nil {
		parity := "byte-identical to direct ingest"
		if !rep.Wire.IndexParity {
			parity = "INDEX MISMATCH"
		}
		fmt.Fprintf(w, "  wire: %d snap(s) → %d blob(s) in %d bucket(s), daemon killed at upload %d; index %s\n",
			rep.Wire.Spooled, rep.Wire.Blobs, rep.Wire.Buckets, rep.Wire.KillAtUpload, parity)
	}
	fmt.Fprintln(w, "repro:", rep.Repro)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
