package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"traceback/internal/replay"
	"traceback/internal/snap"
	"traceback/internal/trace"
)

// record writes a recorded quickstart run's snaps (sections attached)
// into a temp dir and returns their paths.
func record(t *testing.T) []string {
	t.Helper()
	l, res, err := replay.Record("quickstart", false, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Attach(res.Snaps)
	dir := t.TempDir()
	var paths []string
	for i, s := range res.Snaps {
		p := filepath.Join(dir, "snap-"+string(rune('1'+i))+".snap.json")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, p)
	}
	return paths
}

func TestReplayCLIByteIdentical(t *testing.T) {
	paths := record(t)
	var out, errb bytes.Buffer
	if code := run(append([]string{"-q"}, paths...), &out, &errb); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "byte-identical reconstruction") {
		t.Fatalf("stdout: %s", out.String())
	}
}

func TestReplayCLIJSONVerdict(t *testing.T) {
	paths := record(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", paths[0]}, &out, &errb); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errb.String())
	}
	var v output
	if err := json.Unmarshal(out.Bytes(), &v); err != nil {
		t.Fatalf("unparseable verdict %q: %v", out.String(), err)
	}
	if !v.Identical || v.Scenario != "quickstart" || v.Events == 0 {
		t.Fatalf("verdict %+v", v)
	}
}

func TestReplayCLIRendersFaultView(t *testing.T) {
	paths := record(t)
	var out, errb bytes.Buffer
	if code := run([]string{paths[0]}, &out, &errb); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fault-directed view") {
		t.Fatalf("no fault view rendered:\n%s", out.String())
	}
}

// TestReplayCLIDivergence seeds a corrupt recording into the snap and
// asserts the machine-readable rejection: exit 1 with a JSON
// divergence report on stderr.
func TestReplayCLIDivergence(t *testing.T) {
	l, res, err := replay.Record("quickstart", false, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l.Events {
		if l.Events[i].Kind == trace.NDQuantum {
			l.Events[i].Clock++ // the original run never saw this clock
			break
		}
	}
	l.Attach(res.Snaps)
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.snap.json")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Snaps[0].Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errb bytes.Buffer
	if code := run([]string{"-q", p}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	msg := errb.String()
	i := strings.Index(msg, "{")
	if i < 0 {
		t.Fatalf("no JSON divergence on stderr: %s", msg)
	}
	var dv replay.Divergence
	if err := json.Unmarshal([]byte(strings.TrimSpace(msg[i:])), &dv); err != nil {
		t.Fatalf("unparseable divergence %q: %v", msg, err)
	}
	if dv.Kind != "event-mismatch" {
		t.Fatalf("divergence kind %q, want event-mismatch", dv.Kind)
	}
}

// TestReplayCLINoRecording: a snap without the section is a usage
// error, not a divergence.
func TestReplayCLINoRecording(t *testing.T) {
	_, res, err := replay.Record("quickstart", false, false)
	if err != nil {
		t.Fatal(err)
	}
	var s *snap.Snap = res.Snaps[0] // never attached
	dir := t.TempDir()
	p := filepath.Join(dir, "plain.snap.json")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out, errb bytes.Buffer
	if code := run([]string{p}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, errb.String())
	}
}

func TestReplayCLIPerturbNonStrict(t *testing.T) {
	paths := record(t)

	var out, errb bytes.Buffer
	if code := run([]string{"-q", "-perturb", "7", paths[0]}, &out, &errb); code != 0 {
		t.Fatalf("perturbed replay exited %d, want 0 (non-strict); stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "perturbation:") {
		t.Fatalf("no mutation description in output:\n%s", out.String())
	}
	// If the perturbed run departed its log, that's expected — it must
	// be a note, never the strict-mode divergence error.
	if strings.Contains(errb.String(), "tbreplay: divergence:") {
		t.Fatalf("perturbed run reported a strict divergence: %s", errb.String())
	}
}
