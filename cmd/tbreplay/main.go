// tbreplay deterministically re-executes the run that produced a
// snap. The snap's embedded nondeterminism recording (written by
// tbfault -record or any run with a vm.Recorder installed) is the
// sole nondeterminism source: the world is rebuilt from the
// recording's provenance, every recorded decision — scheduling
// checkpoint, signal, kill, module unload, RPC transport verdict,
// managed interrupt — is re-fired at its recorded quantum, and every
// re-observed decision is checked against the log. The replayed
// execution halts where the original did, and the faulting process's
// reconstructed fault-directed view is printed.
//
//	tbreplay -maps maps snap-1.snap.json.gz        # replay + render the fault view
//	tbreplay -json snap-1.snap.json.gz             # machine-readable verdict
//	tbreplay -perturb 7 snap-1.snap.json.gz        # replay under one seeded variation
//
// Exit status: 0 when the replay reproduces every given snap byte for
// byte (recording sections excluded); 1 on divergence — the replay
// stopped conforming to the log, or the reconstruction differs — with
// a machine-readable JSON divergence report on stderr; 2 on usage
// errors or snaps that carry no recording.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"traceback/internal/module"
	"traceback/internal/recon"
	"traceback/internal/replay"
	"traceback/internal/snap"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// output is the -json verdict.
type output struct {
	Scenario   string             `json:"scenario"`
	Trial      bool               `json:"trial,omitempty"`
	Wrap       bool               `json:"wrap,omitempty"`
	Events     int                `json:"events"`
	Interval   uint64             `json:"interval"`
	Snaps      []string           `json:"snaps"`
	Identical  bool               `json:"identical"`
	Divergence *replay.Divergence `json:"divergence,omitempty"`
	Mutation   string             `json:"mutation,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tbreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mapsDir  = fs.String("maps", "", "directory with extra *.map.json mapfiles for the fault view (the replay rebuilds its own)")
		jsonOut  = fs.Bool("json", false, "print the machine-readable verdict instead of the fault view")
		perturb  = fs.Int64("perturb", 0, "replay under one seeded variation of the recording instead of strictly (nonzero seed)")
		noRender = fs.Bool("q", false, "suppress the fault-directed view")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: tbreplay [flags] <snap.json[.gz]> [more snaps of the same run...]")
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tbreplay:", err)
		return 2
	}

	snaps := make([]*snap.Snap, fs.NArg())
	for i, path := range fs.Args() {
		s, err := loadSnap(path)
		if err != nil {
			return fail(err)
		}
		snaps[i] = s
	}
	l, err := replay.FromSnap(snaps[0])
	if err != nil {
		return fail(fmt.Errorf("%s: %w (was the run recorded? see tbfault -record)", fs.Arg(0), err))
	}

	out := output{
		Scenario: l.Scenario, Trial: l.Trial, Wrap: l.Wrap,
		Events: len(l.Events), Interval: l.Interval,
	}

	var res *replay.Result
	if *perturb != 0 {
		pr, err := replay.Perturb(l, *perturb)
		if err != nil {
			return fail(err)
		}
		res = pr.Result
		out.Mutation = pr.Mutation
		out.Divergence = res.Divergence
	} else {
		res, err = replay.Run(l)
		if err != nil {
			return fail(err)
		}
		out.Divergence = res.Divergence
		if out.Divergence == nil {
			out.Divergence = matchSnaps(snaps, res.Snaps)
			out.Identical = out.Divergence == nil
		}
	}
	for _, s := range res.Snaps {
		out.Snaps = append(out.Snaps, s.Process+"/"+s.Reason)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&out); err != nil {
			return fail(err)
		}
	} else {
		printText(stdout, &out)
		if !*noRender && len(res.Snaps) > 0 {
			if err := render(stdout, stderr, res, snaps[0], *mapsDir); err != nil {
				fmt.Fprintln(stderr, "tbreplay: fault view:", err)
			}
		}
	}

	if out.Divergence != nil {
		// Divergence is a first-class machine-readable error: the JSON
		// report goes to stderr regardless of output mode. Under
		// perturbation the run is non-strict — departing the recording
		// is the expected outcome, so it's reported without failing.
		b, _ := json.Marshal(out.Divergence)
		if *perturb != 0 {
			fmt.Fprintf(stderr, "tbreplay: perturbed run departed the recording: %s\n", b)
			return 0
		}
		fmt.Fprintf(stderr, "tbreplay: divergence: %s\n", b)
		return 1
	}
	return 0
}

// matchSnaps requires every input snap to be reproduced byte for byte
// (recording sections excluded) somewhere in the replayed harvest.
// Order-independent: the caller may hand us any subset of the run's
// snaps, in any order.
func matchSnaps(inputs, replayed []*snap.Snap) *replay.Divergence {
	var got [][]byte
	for _, s := range replayed {
		b, err := replay.StrippedBytes(s)
		if err != nil {
			return &replay.Divergence{Kind: "snap-mismatch", Got: err.Error()}
		}
		got = append(got, b)
	}
	for i, s := range inputs {
		want, err := replay.StrippedBytes(s)
		if err != nil {
			return &replay.Divergence{Kind: "snap-mismatch", Got: err.Error()}
		}
		found := false
		for _, g := range got {
			if bytes.Equal(want, g) {
				found = true
				break
			}
		}
		if !found {
			return &replay.Divergence{
				Seq:  i,
				Kind: "snap-mismatch",
				Want: fmt.Sprintf("%s/%s %d bytes", s.Process, s.Reason, len(want)),
				Got:  fmt.Sprintf("no byte-identical snap in the replayed harvest (%d snaps)", len(got)),
			}
		}
	}
	return nil
}

func printText(w io.Writer, out *output) {
	kind := "scenario"
	if out.Trial {
		kind = "trial"
	}
	fmt.Fprintf(w, "replay: %s %s · %d recorded event(s) · checkpoint interval %d\n",
		kind, out.Scenario, out.Events, out.Interval)
	if out.Mutation != "" {
		fmt.Fprintf(w, "replay: perturbation: %s\n", out.Mutation)
	}
	for _, s := range out.Snaps {
		fmt.Fprintf(w, "replay: harvested %s\n", s)
	}
	if out.Identical {
		fmt.Fprintln(w, "replay: byte-identical reconstruction")
	}
}

// render prints the fault-directed view of the replayed snap matching
// the first input (falling back to the first harvested snap under
// perturbation, where the execution legitimately differs).
func render(stdout, stderr io.Writer, res *replay.Result, input *snap.Snap, mapsDir string) error {
	target := res.Snaps[0]
	if want, err := replay.StrippedBytes(input); err == nil {
		for _, s := range res.Snaps {
			if got, err := replay.StrippedBytes(s); err == nil && bytes.Equal(want, got) {
				target = s
				break
			}
		}
	}
	maps := &chainMaps{primary: recon.NewMapSet(res.Maps...)}
	if mapsDir != "" {
		loader, err := recon.NewDirLoader(mapsDir)
		if err != nil {
			return err
		}
		maps.loader = loader
	}
	pt, err := recon.Reconstruct(target, maps)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "--- fault-directed view: %s/%s ---\n", target.Process, target.Reason)
	recon.Render(stdout, pt, recon.RenderOptions{})
	return nil
}

// chainMaps resolves checksums against the replay-built mapfiles
// first, then lazily against the -maps directory.
type chainMaps struct {
	primary *recon.MapSet
	loader  *recon.DirLoader
}

func (c *chainMaps) ForChecksum(sum string) (*module.MapFile, bool) {
	if mf, ok := c.primary.ForChecksum(sum); ok {
		return mf, true
	}
	if c.loader == nil {
		return nil, false
	}
	mf, err := c.loader.Load(sum)
	if err != nil {
		return nil, false
	}
	return mf, true
}

func loadSnap(path string) (*snap.Snap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := snap.LoadAuto(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return s, nil
}
