// tbdump disassembles module files: function boundaries, source line
// annotations, probe idioms, and fixup tables. Useful for inspecting
// what instrumentation did to a binary.
//
//	tbdump build/app.tb.tbm
//	tbdump -func longest_match build/gzip.tb.tbm
//	tbdump -map build/app.map.json
//	tbdump -events flight.json            # flight recorder from tbrun -events
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"traceback/internal/module"
	"traceback/internal/telemetry"
)

func main() {
	var (
		fn      = flag.String("func", "", "disassemble only this function")
		mapDump = flag.Bool("map", false, "treat the input as a mapfile and summarize it")
		evDump  = flag.Bool("events", false, "treat the input as a flight-recorder dump (tbrun -events) and render it")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tbdump [flags] <module.tbm|mapfile.json|events.json>")
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	if *evDump {
		dump, err := telemetry.ReadEventDump(f)
		if err != nil {
			fatal(err)
		}
		dumpEvents(dump)
		return
	}

	if *mapDump || strings.HasSuffix(path, ".json") {
		mf, err := module.LoadMapFile(f)
		if err != nil {
			fatal(err)
		}
		dumpMap(mf)
		return
	}

	m, err := module.Read(f)
	if err != nil {
		fatal(err)
	}
	if *fn != "" {
		if err := module.DisasmFunc(os.Stdout, m, *fn); err != nil {
			fatal(err)
		}
		return
	}
	module.Disasm(os.Stdout, m)
}

func dumpMap(mf *module.MapFile) {
	kind := "native"
	if mf.Managed {
		kind = "managed"
	}
	fmt.Printf("mapfile %s (%s): %d DAGs, base %d, checksum %s\n",
		mf.ModuleName, kind, mf.DAGCount, mf.DAGBase, mf.Checksum)
	for _, d := range mf.DAGs {
		fmt.Printf("DAG %d (%d blocks):\n", d.ID, len(d.Blocks))
		for bi, b := range d.Blocks {
			bit := "-"
			if b.Bit >= 0 {
				bit = fmt.Sprintf("%d", b.Bit)
			}
			extra := ""
			if b.FuncEntry != "" {
				extra += " entry=" + b.FuncEntry
			}
			if b.FuncExit {
				extra += " exit"
			}
			if b.CallReturn {
				extra += " call-return"
			}
			if b.CallTarget != "" {
				extra += " calls=" + b.CallTarget
			}
			lines := ""
			for _, ls := range b.Lines {
				lines += fmt.Sprintf(" %s:%d", ls.File, ls.Line)
			}
			fmt.Printf("  block %d [%d,%d) bit=%s succs=%v%s |%s\n",
				bi, b.Start, b.End, bit, b.Succs, extra, lines)
		}
	}
}

// dumpEvents renders a flight-recorder dump: one line per retained
// event, oldest first, with the machine clock at which it happened.
func dumpEvents(d *telemetry.EventDump) {
	fmt.Printf("flight recorder: %d event(s) recorded, %d dropped, %d retained\n",
		d.Total, d.Dropped, len(d.Events))
	for _, e := range d.Events {
		fmt.Printf("  #%-5d clock %-10d %-16s %s\n", e.Seq, e.Clock, e.Kind, e.Detail)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbdump:", err)
	os.Exit(1)
}
