// tbdump disassembles module files: function boundaries, source line
// annotations, probe idioms, and fixup tables. Useful for inspecting
// what instrumentation did to a binary.
//
//	tbdump build/app.tb.tbm
//	tbdump -func longest_match build/gzip.tb.tbm
//	tbdump -map build/app.map.json
//	tbdump -events flight.json            # flight recorder from tbrun -events
//	tbdump -nondet snap-1.snap.json.gz    # a snap's embedded replay recording
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"traceback/internal/module"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

func main() {
	var (
		fn      = flag.String("func", "", "disassemble only this function")
		mapDump = flag.Bool("map", false, "treat the input as a mapfile and summarize it")
		evDump  = flag.Bool("events", false, "treat the input as a flight-recorder dump (tbrun -events) and render it")
		ndDump  = flag.Bool("nondet", false, "treat the input as a snap and print its embedded nondeterminism recording")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tbdump [flags] <module.tbm|mapfile.json|events.json|snap.json[.gz]>")
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	if *evDump {
		dump, err := telemetry.ReadEventDump(f)
		if err != nil {
			fatal(err)
		}
		dumpEvents(dump)
		return
	}

	if *ndDump {
		s, err := snap.LoadAuto(f)
		if err != nil {
			fatal(err)
		}
		dumpNondet(s)
		return
	}

	if *mapDump || strings.HasSuffix(path, ".json") {
		mf, err := module.LoadMapFile(f)
		if err != nil {
			fatal(err)
		}
		dumpMap(mf)
		return
	}

	m, err := module.Read(f)
	if err != nil {
		fatal(err)
	}
	if *fn != "" {
		if err := module.DisasmFunc(os.Stdout, m, *fn); err != nil {
			fatal(err)
		}
		return
	}
	module.Disasm(os.Stdout, m)
}

func dumpMap(mf *module.MapFile) {
	kind := "native"
	if mf.Managed {
		kind = "managed"
	}
	fmt.Printf("mapfile %s (%s): %d DAGs, base %d, checksum %s\n",
		mf.ModuleName, kind, mf.DAGCount, mf.DAGBase, mf.Checksum)
	for _, d := range mf.DAGs {
		fmt.Printf("DAG %d (%d blocks):\n", d.ID, len(d.Blocks))
		for bi, b := range d.Blocks {
			bit := "-"
			if b.Bit >= 0 {
				bit = fmt.Sprintf("%d", b.Bit)
			}
			extra := ""
			if b.FuncEntry != "" {
				extra += " entry=" + b.FuncEntry
			}
			if b.FuncExit {
				extra += " exit"
			}
			if b.CallReturn {
				extra += " call-return"
			}
			if b.CallTarget != "" {
				extra += " calls=" + b.CallTarget
			}
			lines := ""
			for _, ls := range b.Lines {
				lines += fmt.Sprintf(" %s:%d", ls.File, ls.Line)
			}
			fmt.Printf("  block %d [%d,%d) bit=%s succs=%v%s |%s\n",
				bi, b.Start, b.End, bit, b.Succs, extra, lines)
		}
	}
}

// dumpEvents renders a flight-recorder dump: one line per retained
// event, oldest first, with the machine clock at which it happened.
func dumpEvents(d *telemetry.EventDump) {
	fmt.Printf("flight recorder: %d event(s) recorded, %d dropped, %d retained\n",
		d.Total, d.Dropped, len(d.Events))
	for _, e := range d.Events {
		fmt.Printf("  #%-5d clock %-10d %-16s %s\n", e.Seq, e.Clock, e.Kind, e.Detail)
	}
}

// dumpNondet renders a snap's embedded record-and-replay section:
// the provenance line, then the decoded nondeterminism stream, one
// event per line in recorded order, with signal numbers resolved to
// names. This is the log tbreplay re-executes.
func dumpNondet(s *snap.Snap) {
	if s.Nondet == nil {
		fatal(fmt.Errorf("%s/%s: no nondet section (was the run recorded? see tbfault -record)", s.Process, s.Reason))
	}
	n := s.Nondet
	words := make([]trace.Word, len(n.Words()))
	for i, w := range n.Words() {
		words[i] = trace.Word(w)
	}
	recs, err := trace.DecodeNondet(words)
	if err != nil {
		fatal(err)
	}
	prov := ""
	if n.Wrap {
		prov += " wrap"
	}
	if n.Trial {
		prov += " trial"
	}
	fmt.Printf("nondet recording v%d: scenario %s%s · %d event(s) · checkpoint interval %d\n",
		n.V, n.Scenario, prov, len(recs), n.Interval)
	for i, r := range recs {
		line := r.String()
		if r.Kind == trace.NDSignal {
			line += " (" + vm.SignalName(int(r.Sig)) + ")"
		}
		fmt.Printf("  #%-5d %s\n", i, line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbdump:", err)
	os.Exit(1)
}
