package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/recon"
	"traceback/internal/shard"
	"traceback/internal/shard/gate"
)

// shardBench measures the fan-out query tier over live loopback
// fleets: the committed snap fleet is placed onto N shard daemons by
// the content-hash ring, a gate is put in front, and each point
// records the full wire cost of a gate query — fan out to every
// shard, fold the bucket lists, run triage, encode. Host wall-clock
// numbers, like BENCH_recon.json: the committed BENCH_shard.json is a
// trajectory — regenerate after gate or merge work and compare shapes
// (cost growth across shard counts), not absolute nanoseconds.
type shardPoint struct {
	Shards         int     `json:"shards"`
	FanoutsPerSec  float64 `json:"fanoutsPerSec"`  // GET /v1/buckets round trips
	NsPerFanout    float64 `json:"nsPerFanout"`    // fan-out + merge + encode
	NsPerTriage    float64 `json:"nsPerTriage"`    // GET /v1/regressions on top of a fresh fan-out
	MergedBytes    int     `json:"mergedBytes"`    // /v1/buckets response size
	OccupiedShards int     `json:"occupiedShards"` // shards the ring actually populated
}

type shardReport struct {
	V       int          `json:"v"`
	Fleet   []string     `json:"fleet"`
	Buckets int          `json:"buckets"`
	Points  []shardPoint `json:"points"`
}

// shardCounts are the fleet sizes measured; 1 is the degenerate
// single-shard gate, so the 1→2→4 shape isolates pure fan-out cost.
var shardCounts = []int{1, 2, 4}

func shardBench(snapsDir, out string) error {
	paths, err := filepath.Glob(filepath.Join(snapsDir, "*.snap.json.gz"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no *.snap.json.gz under %s (run: go run ./tools/gensnaps)", snapsDir)
	}
	sort.Strings(paths)
	loader, err := recon.NewDirLoader(filepath.Join(snapsDir, "maps"))
	if err != nil {
		return err
	}
	maps := recon.NewMapCache(loader.Load)

	// Reconstruct the fleet once; every shard count reuses the snaps,
	// signatures, and placement sums.
	pipe := recon.NewPipeline(maps, 0)
	sources := make([]recon.Source, len(paths))
	for i, p := range paths {
		sources[i] = recon.FileSource(p)
	}
	results := pipe.Run(sources)
	sigs := make([]archive.Signature, len(results))
	sums := make([]string, len(results))
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("%s: %v", paths[i], res.Err)
		}
		sigs[i] = archive.FromTrace(res.Trace)
		if sums[i], _, err = archive.ChecksumSnap(res.Trace.Snap); err != nil {
			return fmt.Errorf("%s: %v", paths[i], err)
		}
	}

	rep := shardReport{V: 1}
	for _, p := range paths {
		rep.Fleet = append(rep.Fleet, filepath.Base(p))
	}

	for _, n := range shardCounts {
		pt, buckets, err := shardPointAt(n, results, sigs, sums, maps)
		if err != nil {
			return fmt.Errorf("%d shard(s): %w", n, err)
		}
		rep.Buckets = buckets
		rep.Points = append(rep.Points, pt)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("shard bench: %d snap(s), %d bucket(s)\n", len(paths), rep.Buckets)
	for _, pt := range rep.Points {
		fmt.Printf("  shards %-2d %8.0f fanouts/sec  %10.0f ns/fanout  %10.0f ns/triage  (%d occupied)\n",
			pt.Shards, pt.FanoutsPerSec, pt.NsPerFanout, pt.NsPerTriage, pt.OccupiedShards)
	}
	fmt.Println("wrote", out)
	return nil
}

// shardPointAt boots an n-shard loopback fleet plus a gate, places
// the fleet by ring, and measures the two gate query shapes.
func shardPointAt(n int, results []recon.Result, sigs []archive.Signature, sums []string, maps recon.MapResolver) (shardPoint, int, error) {
	ring, err := shard.NewRing(n)
	if err != nil {
		return shardPoint{}, 0, err
	}
	root, err := os.MkdirTemp("", "tbbench-shard-*")
	if err != nil {
		return shardPoint{}, 0, err
	}
	defer os.RemoveAll(root)

	occupied := map[int]bool{}
	urls := make([]string, n)
	for s := 0; s < n; s++ {
		arch, err := archive.Open(filepath.Join(root, fmt.Sprintf("shard%d", s)))
		if err != nil {
			return shardPoint{}, 0, err
		}
		defer arch.Close()
		for i, res := range results {
			home, err := ring.Place(sums[i])
			if err != nil {
				return shardPoint{}, 0, err
			}
			if home != s {
				continue
			}
			occupied[s] = true
			if _, err := arch.Ingest(res.Trace.Snap, sigs[i]); err != nil {
				return shardPoint{}, 0, err
			}
		}
		ts := httptest.NewServer(collect.NewServer(arch, collect.ServerOptions{}).Handler())
		defer ts.Close()
		urls[s] = ts.URL
	}

	g, err := gate.New(urls, gate.Options{Maps: maps})
	if err != nil {
		return shardPoint{}, 0, err
	}
	gts := httptest.NewServer(g.Handler())
	defer gts.Close()

	// Warm both routes (connection pools, triage caches) and take the
	// merged view's stats outside the measured loops.
	body, err := fetchOK(gts.URL + collect.PathBuckets)
	if err != nil {
		return shardPoint{}, 0, err
	}
	var tr collect.TopResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		return shardPoint{}, 0, err
	}
	if _, err := fetchOK(gts.URL + collect.PathRegressions); err != nil {
		return shardPoint{}, 0, err
	}

	pt := shardPoint{Shards: n, MergedBytes: len(body), OccupiedShards: len(occupied)}
	ns, err := timeRoute(gts.URL + collect.PathBuckets)
	if err != nil {
		return shardPoint{}, 0, err
	}
	pt.NsPerFanout = ns
	pt.FanoutsPerSec = round2(1e9 / ns)
	if pt.NsPerTriage, err = timeRoute(gts.URL + collect.PathRegressions); err != nil {
		return shardPoint{}, 0, err
	}
	return pt, len(tr.Buckets), nil
}

// timeRoute drives the route for a fixed window and returns mean
// wall nanoseconds per round trip.
func timeRoute(url string) (float64, error) {
	const minWindow = 300 * time.Millisecond
	iters := 0
	t0 := time.Now()
	for time.Since(t0) < minWindow {
		if _, err := fetchOK(url); err != nil {
			return 0, err
		}
		iters++
	}
	return round2(float64(time.Since(t0).Nanoseconds()) / float64(iters)), nil
}

func fetchOK(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}
