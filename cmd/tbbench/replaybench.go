package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"traceback/internal/replay"
	"traceback/internal/scenario"
)

// replayBench measures the record-and-replay subsystem per example
// scenario: what recording costs the original run, and how replay
// compares to a plain execution. Host wall-clock numbers — the
// committed BENCH_replay.json is a trajectory; regenerate after
// record/replay work and compare shapes, not absolute nanoseconds.
// (Cycle-level invariance of recording is proven separately by the
// parity tests: the recorder never changes VM behavior, only host
// cost.)
type replayPoint struct {
	Scenario string `json:"scenario"`
	// Events is the recording's length; Snaps the harvest size.
	Events int `json:"events"`
	Snaps  int `json:"snaps"`
	// RecordOverheadPct is the wall-clock cost of running with the
	// recorder installed, relative to a plain run (build + run +
	// harvest in both).
	RecordOverheadPct float64 `json:"recordOverheadPct"`
	// ReplaySpeedRatio is replay wall-clock over plain-run wall-clock
	// (1.0 = replay as fast as the original; replay additionally pays
	// the conformance drain against the log).
	ReplaySpeedRatio float64 `json:"replaySpeedRatio"`
}

type replayReport struct {
	V      int           `json:"v"`
	Points []replayPoint `json:"points"`
}

func replayBench(out string) error {
	rep := replayReport{V: 1}
	for _, b := range scenario.Builders {
		// One recorded reference run: the log replays below, and its
		// event count lands in the report.
		l, res, err := replay.Record(b.Name, false, false)
		if err != nil {
			return err
		}

		plain, err := timeRun(func() error {
			setup, err := b.Build(scenario.Options{})
			if err != nil {
				return err
			}
			setup.Run(0)
			_, err = setup.Collect()
			return err
		})
		if err != nil {
			return err
		}
		recorded, err := timeRun(func() error {
			_, _, err := replay.Record(b.Name, false, false)
			return err
		})
		if err != nil {
			return err
		}
		replayed, err := timeRun(func() error {
			r, err := replay.Run(l)
			if err != nil {
				return err
			}
			if r.Divergence != nil {
				return fmt.Errorf("%s: replay diverged: %v", b.Name, r.Divergence)
			}
			return nil
		})
		if err != nil {
			return err
		}

		p := replayPoint{
			Scenario:          b.Name,
			Events:            len(l.Events),
			Snaps:             len(res.Snaps),
			RecordOverheadPct: round2((recorded.Seconds()/plain.Seconds() - 1) * 100),
			ReplaySpeedRatio:  round2(replayed.Seconds() / plain.Seconds()),
		}
		rep.Points = append(rep.Points, p)
		fmt.Printf("%-14s %4d event(s)  record overhead %+6.2f%%  replay/plain %.2fx\n",
			b.Name, p.Events, p.RecordOverheadPct, p.ReplaySpeedRatio)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// timeRun measures one iteration's mean wall-clock over a minimum
// window, with one unmeasured warm pass.
func timeRun(f func() error) (time.Duration, error) {
	if err := f(); err != nil {
		return 0, err
	}
	const minWindow = 200 * time.Millisecond
	iters := 0
	t0 := time.Now()
	for time.Since(t0) < minWindow {
		if err := f(); err != nil {
			return 0, err
		}
		iters++
	}
	return time.Since(t0) / time.Duration(iters), nil
}
