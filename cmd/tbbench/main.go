// tbbench regenerates the paper's evaluation tables (§6), printing
// measured rows next to the paper's. Absolute numbers are VM cycle
// counts; the reproduction target is the shape.
//
//	tbbench -table all
//	tbbench -table 1 -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"traceback/internal/core"
	"traceback/internal/workload"
)

func main() {
	var (
		table    = flag.String("table", "all", "which result to regenerate: 1, 2, 3, petshop, ablation, all")
		scale    = flag.Float64("scale", 1.0, "work scale factor for Table 1 (smaller = faster)")
		rec      = flag.Bool("recon", false, "benchmark the reconstruction pipeline over the committed snap fleet instead of the paper tables")
		recSnaps = flag.String("recon-snaps", "snaps", "snap fleet directory for -recon (maps in <dir>/maps)")
		recOut   = flag.String("recon-out", "BENCH_recon.json", "output file for -recon")
		shrd     = flag.Bool("shard", false, "benchmark gate fan-out queries over loopback shard fleets instead of the paper tables")
		shrdIn   = flag.String("shard-snaps", "snaps", "snap fleet directory for -shard (maps in <dir>/maps)")
		shrdOut  = flag.String("shard-out", "BENCH_shard.json", "output file for -shard")
		rply     = flag.Bool("replay", false, "benchmark record overhead and replay speed over the example scenarios instead of the paper tables")
		rplyOut  = flag.String("replay-out", "BENCH_replay.json", "output file for -replay")
	)
	flag.Parse()

	if *rec {
		if err := reconBench(*recSnaps, *recOut); err != nil {
			fmt.Fprintln(os.Stderr, "tbbench:", err)
			os.Exit(1)
		}
		return
	}
	if *shrd {
		if err := shardBench(*shrdIn, *shrdOut); err != nil {
			fmt.Fprintln(os.Stderr, "tbbench:", err)
			os.Exit(1)
		}
		return
	}
	if *rply {
		if err := replayBench(*rplyOut); err != nil {
			fmt.Fprintln(os.Stderr, "tbbench:", err)
			os.Exit(1)
		}
		return
	}

	run := map[string]bool{}
	if *table == "all" {
		for _, t := range []string{"1", "2", "3", "petshop", "ablation"} {
			run[t] = true
		}
	} else {
		run[*table] = true
	}

	if run["1"] {
		table1(*scale)
	}
	if run["2"] {
		table2()
	}
	if run["3"] {
		table3()
	}
	if run["petshop"] {
		petshop()
	}
	if run["ablation"] {
		ablations(*scale)
	}
}

func table1(scale float64) {
	fmt.Println("== Table 1: SPECint2000, Normal vs TraceBack (cycles) ==")
	fmt.Printf("%-9s %13s %13s %7s %7s\n", "Test", "Normal", "TraceBack", "Ratio", "Paper")
	rs, geo, paperGeo, err := workload.RunSpecSuite(scale)
	if err != nil {
		fatal(err)
	}
	for _, r := range rs {
		fmt.Printf("%-9s %13d %13d %7.2f %7.2f\n", r.Name, r.Normal, r.TraceBack, r.Ratio, r.PaperRatio)
	}
	fmt.Printf("%-9s %13s %13s %7.2f %7.2f\n\n", "GeoMean", "", "", geo, paperGeo)
}

func table2() {
	fmt.Println("== Table 2: SPECweb99 on the Apache-like server (paper ratio ~1.05) ==")
	r, err := workload.RunWeb(40)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-14s %10s %10s %7s\n", "Metric", "Normal", "TraceBack", "Ratio")
	fmt.Printf("%-14s %10.1f %10.1f %7.3f\n", "Response(ms)", r.ResponseNormal, r.ResponseTB, r.ResponseTB/r.ResponseNormal)
	fmt.Printf("%-14s %10.1f %10.1f %7.3f\n", "ops/sec", r.OpsNormal, r.OpsTB, r.OpsNormal/r.OpsTB)
	fmt.Printf("%-14s %10.0f %10.0f %7.3f\n\n", "Kbits/sec", r.KbitsNormal, r.KbitsTB, r.KbitsNormal/r.KbitsTB)
}

func table3() {
	fmt.Println("== Table 3: SPECjbb warehouses (throughput; ratio = Normal/TraceBack) ==")
	fmt.Printf("%-8s %10s %10s %7s %7s\n", "System", "Normal", "TraceBack", "Ratio", "Paper")
	for _, sys := range workload.JbbSystems {
		for _, wh := range []int{1, 5} {
			r, err := workload.RunJbb(sys, wh, 4000)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %10.1f %10.1f %7.3f %7.3f\n",
				fmt.Sprintf("%s %dW", r.System, r.Warehouses), r.Normal, r.TraceBack, r.Ratio, r.PaperRatio)
		}
	}
	fmt.Println()
}

func petshop() {
	fmt.Println("== PetShop: managed web app (paper: ~1% throughput drop) ==")
	r, err := workload.RunPetShop(6, 500)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("req/sec: %.0f -> %.0f (drop %.2f%%)\n\n", r.ReqPerSecNormal, r.ReqPerSecTB, r.Drop*100)
}

func ablations(scale float64) {
	fmt.Println("== Ablations (DESIGN.md §4) ==")
	rs, err := workload.RunAblations(scale)
	if err != nil {
		fatal(err)
	}
	for _, r := range rs {
		fmt.Printf("%-8s %-20s ratio %.2f (default %.2f)\n", r.Name, r.Variant, r.Ratio, r.Baseline)
	}
	p, _ := workload.SpecByName("gzip")
	spill, err := workload.RunSpec(p, scale, core.Options{ForceSpill: true})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gzip forced spills touch %d probes\n", spill.Spills)
	off, on, err := workload.SubBufferOverhead(scale, 4)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sub-buffering: %d -> %d cycles (+%.2f%%)\n\n", off, on, (float64(on)/float64(off)-1)*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbbench:", err)
	os.Exit(1)
}
