package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"traceback/internal/recon"
)

// reconBench measures the reconstruction pipeline over the committed
// snap fleet at several worker budgets and writes the trajectory
// point to a JSON file. Unlike the cycle-count tables, these are
// host wall-clock numbers: the committed BENCH_recon.json records a
// trajectory — regenerate after pipeline work and compare shapes
// (scaling across jobs, allocs/record), not absolute nanoseconds.
type reconPoint struct {
	Jobs            int     `json:"jobs"`
	SnapsPerSec     float64 `json:"snapsPerSec"`
	NsPerRecord     float64 `json:"nsPerRecord"`
	AllocsPerRecord float64 `json:"allocsPerRecord"`
}

type reconReport struct {
	V          int          `json:"v"`
	Fleet      []string     `json:"fleet"`
	Records    int64        `json:"recordsPerPass"`
	Iterations int          `json:"iterations"`
	Points     []reconPoint `json:"points"`
}

// reconJobs are the worker budgets measured, mirroring the
// collect-check ingest concurrency ladder.
var reconJobs = []int{1, 4, 16}

func reconBench(snapsDir, out string) error {
	entries, err := filepath.Glob(filepath.Join(snapsDir, "*.snap.json.gz"))
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no *.snap.json.gz under %s (run: go run ./tools/gensnaps)", snapsDir)
	}
	sort.Strings(entries)
	loader, err := recon.NewDirLoader(filepath.Join(snapsDir, "maps"))
	if err != nil {
		return err
	}

	rep := reconReport{V: 1}
	for _, p := range entries {
		rep.Fleet = append(rep.Fleet, filepath.Base(p))
	}

	const minWindow = 300 * time.Millisecond
	for _, jobs := range reconJobs {
		maps := recon.NewMapCache(loader.Load)
		pipe := recon.NewPipeline(maps, jobs)
		var sources []recon.Source
		for _, p := range entries {
			sources = append(sources, recon.FileSource(p))
		}
		// Warm: mapfile parses and file cache out of the measured loop.
		for _, r := range pipe.Run(sources) {
			if r.Err != nil {
				return fmt.Errorf("%s: %v", r.Name, r.Err)
			}
		}
		warm := pipe.Snapshot()
		if warm.RecordsMined == 0 {
			return fmt.Errorf("fleet mined no records")
		}
		rep.Records = warm.RecordsMined

		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		iters := 0
		t0 := time.Now()
		for time.Since(t0) < minWindow {
			pipe.Run(sources)
			iters++
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)

		snaps := float64(iters * len(sources))
		records := float64(int64(iters) * warm.RecordsMined)
		rep.Iterations = iters
		rep.Points = append(rep.Points, reconPoint{
			Jobs:            jobs,
			SnapsPerSec:     round2(snaps / wall.Seconds()),
			NsPerRecord:     round2(float64(wall.Nanoseconds()) / records),
			AllocsPerRecord: round2(float64(ms1.Mallocs-ms0.Mallocs) / records),
		})
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("recon bench: %d snap(s), %d records/pass\n", len(entries), rep.Records)
	for _, pt := range rep.Points {
		fmt.Printf("  jobs %-3d %10.0f snaps/sec  %8.1f ns/record  %6.2f allocs/record\n",
			pt.Jobs, pt.SnapsPerSec, pt.NsPerRecord, pt.AllocsPerRecord)
	}
	fmt.Println("wrote", out)
	return nil
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}
