package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
)

// TestGateModeServesMergedFleet boots tbcollectd -gate over two
// in-process shard daemons, checks a fan-out query and the aggregate
// health view, and shuts it down with a signal.
func TestGateModeServesMergedFleet(t *testing.T) {
	var shardURLs []string
	for i := 0; i < 2; i++ {
		arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { arch.Close() })
		ts := httptest.NewServer(collect.NewServer(arch, collect.ServerOptions{}).Handler())
		t.Cleanup(ts.Close)
		shardURLs = append(shardURLs, ts.URL)
	}

	var stdout, stderr syncBuffer
	sigs := make(chan os.Signal, 1)
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{"-listen", "127.0.0.1:0", "-gate", strings.Join(shardURLs, ",")},
			&stdout, &stderr, sigs)
	}()

	base := waitForListen(t, &stdout)
	resp, err := http.Get(base + collect.PathBuckets)
	if err != nil {
		t.Fatal(err)
	}
	var tr collect.TopResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || tr.V != 1 {
		t.Fatalf("gate buckets: %s, v=%d", resp.Status, tr.V)
	}

	resp, err = http.Get(base + collect.PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	var hr struct {
		State  string `json:"state"`
		Shards []any  `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hr.State != collect.HealthOK || len(hr.Shards) != 2 {
		t.Fatalf("gate health: state=%q shards=%d, want ok over 2", hr.State, len(hr.Shards))
	}

	sigs <- os.Interrupt
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("gate exited %d: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gate did not stop after signal")
	}
	if out := stdout.String(); !strings.Contains(out, "gate stopped") {
		t.Errorf("shutdown not reported:\n%s", out)
	}
}
