// The -gate mode: tbcollectd as the fan-out query tier of a sharded
// fleet. It owns no warehouse; every triage route fans out to the
// listed shards and serves the deterministic merge
// (internal/shard/gate).
//
//	tbcollectd -gate http://s0:7321,http://s1:7321,http://s2:7321 -listen :7320
//
// The shard list order is the ring order — it must match the order
// the fleet's tbagent instances were given.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"traceback/internal/recon"
	"traceback/internal/shard/gate"
)

func runGate(listen, shardsCSV, mapsDir string, drainTimeout time.Duration,
	stdout io.Writer, fail func(error) int, sigs <-chan os.Signal) int {
	var shards []string
	for _, s := range strings.Split(shardsCSV, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}
	var maps recon.MapResolver
	if mapsDir != "" {
		loader, err := recon.NewDirLoader(mapsDir)
		if err != nil {
			return fail(err)
		}
		maps = recon.NewMapCache(loader.Load)
	}
	g, err := gate.New(shards, gate.Options{Maps: maps})
	if err != nil {
		return fail(err)
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "tbcollectd: gate listening on http://%s over %d shard(s)\n",
		l.Addr(), len(shards))

	errc := make(chan error, 1)
	go func() { errc <- g.Serve(l) }()
	select {
	case <-sigs:
		fmt.Fprintln(stdout, "tbcollectd: gate shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		derr := g.Shutdown(ctx)
		cancel()
		if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && derr == nil {
			derr = serr
		}
		if derr != nil {
			return fail(derr)
		}
	case serr := <-errc:
		if serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			return fail(serr)
		}
	}
	fmt.Fprintln(stdout, "tbcollectd: gate stopped")
	return 0
}
