// tbcollectd is the fleet collection daemon: it fronts a snap
// warehouse (internal/archive) with the versioned HTTP collection
// protocol (internal/collect) so tbagent uploaders on remote machines
// can feed it crash snaps.
//
//	tbcollectd -listen :7321 -store wh -maps snaps/maps
//
// Routes: HEAD /v1/blob/{sum} (dedup precheck), POST /v1/snap
// (idempotent gzip upload with hash echo), GET /v1/buckets and
// /v1/top (fleet triage JSON), GET /v1/regressions (new/spiking
// classification of every signature), GET /v1/rates?sig=<prefix>
// (one signature's crash-rate windows), GET /v1/clusters
// (near-duplicate signature clustering; needs -maps), GET /metrics
// (coll_* + arch_* + triage_* telemetry; ?format=json for JSON), GET
// /healthz (state, uptime, warehouse totals). Uploads beyond
// -inflight concurrent ingests are rejected 429 with Retry-After.
// SIGINT/SIGTERM drains gracefully: in-flight ingests finish and the
// store closes with a flushed index.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/recon"
	"traceback/internal/telemetry"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

// run is main with the process edges made explicit for in-process
// tests; sigs triggers the graceful drain.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("tbcollectd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:7321", "address to listen on")
	store := fs.String("store", "store", "warehouse directory")
	mapsDir := fs.String("maps", "", "directory containing *.map.json mapfiles (empty: weak signatures)")
	inflight := fs.Int("inflight", 4, "max concurrent ingests before 429 backpressure")
	maxBody := fs.Int64("max-body", 64<<20, "max upload body size in bytes")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "bound on the graceful drain at shutdown")
	gateShards := fs.String("gate", "", "comma-separated shard base URLs: run as a fan-out query gate instead of a warehouse daemon")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tbcollectd:", err)
		return 1
	}
	if fs.NArg() != 0 {
		return fail(fmt.Errorf("unexpected arguments %v", fs.Args()))
	}
	if *gateShards != "" {
		return runGate(*listen, *gateShards, *mapsDir, *drainTimeout, stdout, fail, sigs)
	}

	var maps recon.MapResolver
	if *mapsDir != "" {
		loader, err := recon.NewDirLoader(*mapsDir)
		if err != nil {
			return fail(err)
		}
		maps = recon.NewMapCache(loader.Load)
	}
	reg := telemetry.New()
	arch, err := archive.OpenWith(*store, archive.Options{Telemetry: reg})
	if err != nil {
		return fail(err)
	}
	srv := collect.NewServer(arch, collect.ServerOptions{
		Maps: maps, MaxInflight: *inflight, MaxBodyBytes: *maxBody, Telemetry: reg,
	})
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		arch.Close()
		return fail(err)
	}
	fmt.Fprintf(stdout, "tbcollectd: listening on http://%s (store %s, inflight %d)\n",
		l.Addr(), *store, *inflight)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case <-sigs:
		// Flip /healthz to the draining state first, so anything
		// polling health sees the drain before the listener closes.
		srv.BeginDrain()
		fmt.Fprintln(stdout, "tbcollectd: draining")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		derr := srv.Shutdown(ctx)
		cancel()
		if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && derr == nil {
			derr = serr
		}
		if derr != nil {
			arch.Close()
			return fail(derr)
		}
	case serr := <-errc:
		if serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			arch.Close()
			return fail(serr)
		}
	}
	if err := arch.Close(); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "tbcollectd: drained; store holds %d blob(s) in %d bucket(s)\n",
		arch.NumBlobs(), len(arch.Buckets()))
	return 0
}
