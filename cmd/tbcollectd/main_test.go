package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe to read while run() writes it
// from the daemon goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonServesAndDrains boots the daemon main on an ephemeral
// port, hits its health and metrics routes, then delivers a signal
// and checks the graceful-drain exit.
func TestDaemonServesAndDrains(t *testing.T) {
	store := filepath.Join(t.TempDir(), "wh")
	var stdout, stderr syncBuffer
	sigs := make(chan os.Signal, 1)
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{"-listen", "127.0.0.1:0", "-store", store}, &stdout, &stderr, sigs)
	}()

	base := waitForListen(t, &stdout)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}

	sigs <- os.Interrupt
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("daemon exited %d: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after signal")
	}
	if out := stdout.String(); !strings.Contains(out, "draining") || !strings.Contains(out, "drained") {
		t.Errorf("drain not reported:\n%s", out)
	}
	// The store closed cleanly: the index was flushed.
	if _, err := os.Stat(filepath.Join(store, "index.json")); err != nil {
		t.Errorf("index not flushed at shutdown: %v", err)
	}
}

// waitForListen parses the daemon's "listening on http://addr" line.
func waitForListen(t *testing.T, stdout *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		out := stdout.String()
		if i := strings.Index(out, "http://"); i >= 0 {
			if j := strings.IndexAny(out[i:], " \n"); j > 0 {
				return out[i : i+j]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never reported its address:\n%s", stdout.String())
	return ""
}
