// tbrun loads modules into a process on the synthetic machine and
// runs it with the TraceBack runtime attached. Snaps (from exceptions,
// the snap API, or abrupt termination) are written to disk for
// offline reconstruction with tbrecon.
//
//	tbrun -snapdir snaps app.tb.tbm
//	tbrun -policy policy.txt -arg 3 lib.tb.tbm app.tb.tbm
//	tbrun -kill-after 50000 app.tb.tbm     # abrupt kill, post-mortem snap
//	tbrun -metrics - app.tb.tbm            # Prometheus exposition on stdout
//	tbrun -events flight.json app.tb.tbm   # flight-recorder dump for tbdump -events
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"traceback/internal/module"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/telemetry"
	"traceback/internal/verify"
	"traceback/internal/vm"
)

func main() {
	var (
		policyPath = flag.String("policy", "", "textual policy file (default: snap on everything)")
		snapDir    = flag.String("snapdir", "snaps", "directory for snap files")
		arg        = flag.Uint64("arg", 0, "argument passed to main")
		bufWords   = flag.Int("bufwords", 16384, "trace buffer size in words")
		numBufs    = flag.Int("buffers", 8, "number of main trace buffers")
		subBufs    = flag.Int("subbuffers", 4, "sub-buffers per buffer")
		killAfter  = flag.Int("kill-after", 0, "kill -9 the process after N scheduling quanta")
		maxSteps   = flag.Int("maxsteps", 50_000_000, "scheduling quantum budget")
		seed       = flag.Int64("seed", 42, "machine PRNG seed")
		metricsTo  = flag.String("metrics", "", "write runtime+VM metrics to this file on exit (- = stdout; .json = JSON, else Prometheus text)")
		eventsTo   = flag.String("events", "", "write the flight-recorder event dump (JSON) to this file on exit")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tbrun [flags] <module.tbm> [more modules...]")
		flag.Usage()
		os.Exit(2)
	}

	// One registry is shared by the runtime and the VM, so the
	// exposition shows tbrt_ and vm_ metrics side by side and the
	// flight recorder interleaves events from both layers.
	reg := telemetry.New()
	cfg := tbrt.Config{
		BufferWords: *bufWords,
		NumBuffers:  *numBufs,
		SubBuffers:  *subBufs,
		Policy:      tbrt.DefaultPolicy(),
		Telemetry:   reg,
	}
	if *policyPath != "" {
		f, err := os.Open(*policyPath)
		if err != nil {
			fatal(err)
		}
		pol, err := tbrt.ParsePolicy(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		cfg.Policy = pol
	}

	if err := os.MkdirAll(*snapDir, 0o755); err != nil {
		fatal(err)
	}
	snapN := 0
	cfg.SnapSink = func(s *snap.Snap) {
		snapN++
		path := filepath.Join(*snapDir, fmt.Sprintf("%s-%d.snap.json", s.Process, snapN))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := s.Save(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("snap: %s (%s)\n", path, s.Reason)
	}

	world := vm.NewWorld(*seed)
	mach := world.NewMachine("tbrun-host", 0)
	mach.EnableTelemetry(reg)
	name := filepath.Base(flag.Arg(flag.NArg() - 1))
	proc, rt, err := tbrt.NewProcess(mach, name, cfg)
	if err != nil {
		fatal(err)
	}
	vmetrics := verify.NewMetrics(reg)
	rec := reg.FlightRecorder()
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		mod, err := module.Read(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if _, err := proc.Load(mod); err != nil {
			fatal(err)
		}
		tag := "uninstrumented"
		if mod.Instrumented {
			tag = fmt.Sprintf("%d DAGs", mod.DAGCount)
			// Verification provenance: the trace this run produces is
			// only as trustworthy as the module's probes, so record
			// whether they check out (module-only: no mapfile at run
			// time).
			vres := verify.Verify(mod, nil, verify.Options{})
			vmetrics.Observe(vres)
			if vres.Ok() {
				tag += ", verified"
				rec.Record(0, "module-verified", mod.Name)
			} else {
				tag += fmt.Sprintf(", VERIFY FAILED: %d errors", vres.NumError)
				rec.Record(0, "module-verify-failed", mod.Name)
				for _, d := range vres.Diags {
					if d.Severity == verify.SevError {
						fmt.Fprintln(os.Stderr, "tbrun:", d)
					}
				}
			}
		}
		fmt.Printf("loaded %s (%s)\n", mod.Name, tag)
	}
	if _, err := proc.StartMain(*arg); err != nil {
		fatal(err)
	}

	if *killAfter > 0 {
		world.Run(*killAfter, func() bool { return proc.Exited })
		if !proc.Exited {
			fmt.Println("kill -9")
			mach.KillProcess(proc)
			rt.PostMortemSnap()
		}
	} else {
		world.Run(*maxSteps, func() bool { return proc.Exited })
	}

	os.Stdout.Write(proc.Out)
	switch {
	case !proc.Exited:
		fmt.Println("process did not finish (hung?); taking an external snap")
		rt.TakeSnap(tbrt.SnapReason{Kind: "external", Detail: "tbrun timeout"})
	case proc.FatalSignal != 0:
		fmt.Printf("process terminated: %s\n", vm.SignalName(proc.FatalSignal))
	default:
		fmt.Printf("process exited normally: status %d (%d cycles)\n", proc.ExitCode, proc.Cycles)
	}

	if *metricsTo != "" {
		if err := writeMetrics(*metricsTo, reg); err != nil {
			fatal(err)
		}
	}
	if *eventsTo != "" {
		f, err := os.Create(*eventsTo)
		if err != nil {
			fatal(err)
		}
		err = reg.FlightRecorder().WriteJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
}

// writeMetrics emits the shared registry: "-" goes to stdout; a path
// ending in .json gets the JSON form, anything else Prometheus text.
func writeMetrics(dest string, reg *telemetry.Registry) error {
	var w io.Writer = os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(dest, ".json") {
		return reg.WriteJSON(w)
	}
	return reg.WritePrometheus(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbrun:", err)
	os.Exit(1)
}
