// tbagent is the machine-side uploader of the fleet collection
// plane: it watches a spool directory for snaps (written by the
// TraceBack service's forward hook, or by anything else that drops
// *.snap.json[.gz] files there) and uploads each to a tbcollectd
// daemon with a dedup precheck, jittered exponential backoff, and a
// durable commit rule — a snap leaves the spool only after a 2xx
// response whose hash echo matches, so a killed daemon, a truncated
// response, or a machine restart never loses evidence.
//
//	tbagent -spool /var/spool/traceback -server http://collector:7321
//	tbagent -spool spool -server http://127.0.0.1:7321 -once
//
// Against a sharded fleet, -server takes the comma-separated shard
// list in ring order; the agent places each snap by its content hash
// and fails over to the next live shard when the home shard is down
// or draining (counted in coll_agent_failover_total):
//
//	tbagent -spool spool -server http://s0:7321,http://s1:7321,http://s2:7321
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"traceback/internal/collect"
	"traceback/internal/telemetry"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

// run is main with the process edges made explicit for in-process
// tests; sigs stops the watch loop.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("tbagent", flag.ContinueOnError)
	fs.SetOutput(stderr)
	spool := fs.String("spool", "spool", "spool directory to watch")
	server := fs.String("server", "http://127.0.0.1:7321", "collection daemon base URL(s), comma-separated in shard-ring order")
	once := fs.Bool("once", false, "drain the spool and exit instead of watching")
	poll := fs.Duration("poll", 2*time.Second, "spool poll interval")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	backoffBase := fs.Duration("backoff-base", 200*time.Millisecond, "first retry delay")
	backoffMax := fs.Duration("backoff-max", 30*time.Second, "retry delay cap")
	seed := fs.Int64("seed", 0, "backoff jitter seed (0: from the clock)")
	metricsTo := fs.String("metrics", "", "write agent metrics to this file on exit (- = stderr; .json = JSON, else Prometheus text)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tbagent:", err)
		return 1
	}
	if fs.NArg() != 0 {
		return fail(fmt.Errorf("unexpected arguments %v", fs.Args()))
	}

	var servers []string
	for _, s := range strings.Split(*server, ",") {
		if s = strings.TrimSpace(s); s != "" {
			servers = append(servers, s)
		}
	}
	reg := telemetry.New()
	ag, err := collect.NewFleetAgent(*spool, servers, collect.AgentOptions{
		Client:      &http.Client{Timeout: *timeout},
		BackoffBase: *backoffBase,
		BackoffMax:  *backoffMax,
		Seed:        *seed,
		Telemetry:   reg,
	})
	if err != nil {
		return fail(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-sigs
		cancel()
	}()

	if *once {
		err = ag.Drain(ctx)
	} else {
		// A signal is the clean way out of the watch loop.
		if err = ag.Run(ctx, *poll); errors.Is(err, context.Canceled) {
			err = nil
		}
	}
	if *metricsTo != "" {
		if werr := writeMetrics(*metricsTo, stderr, reg); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(stdout, "tbagent: spool drained")
	return 0
}

func writeMetrics(dest string, stderr io.Writer, reg *telemetry.Registry) error {
	if dest == "-" {
		return reg.WritePrometheus(stderr)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(dest, ".json") {
		return reg.WriteJSON(f)
	}
	return reg.WritePrometheus(f)
}
