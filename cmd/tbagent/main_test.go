package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/snap"
)

// TestAgentOnceDrainsSpool runs the agent main in -once mode against
// an in-process daemon and checks the spool empties, the snap lands,
// and -metrics writes agent telemetry without polluting stdout.
func TestAgentOnceDrainsSpool(t *testing.T) {
	arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	srv := collect.NewServer(arch, collect.ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spool := t.TempDir()
	sn := &snap.Snap{Host: "m1", Process: "app", PID: 7, Reason: "exception SIGSEGV", Time: 42}
	if _, err := collect.Spool(spool, sn); err != nil {
		t.Fatal(err)
	}

	mfile := filepath.Join(t.TempDir(), "agent.prom")
	var stdout, stderr bytes.Buffer
	sigs := make(chan os.Signal, 1)
	code := run([]string{"-spool", spool, "-server", ts.URL, "-once", "-metrics", mfile},
		&stdout, &stderr, sigs)
	if code != 0 {
		t.Fatalf("agent exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "spool drained") {
		t.Errorf("stdout: %q", stdout.String())
	}
	if arch.NumBlobs() != 1 {
		t.Errorf("snap did not land: %d blob(s)", arch.NumBlobs())
	}
	entries, err := os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spool still holds %d entr(ies)", len(entries))
	}
	prom, err := os.ReadFile(mfile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "coll_agent_uploads_total 1") {
		t.Errorf("agent metrics missing upload count:\n%s", prom)
	}
}
