package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/snap"
)

// mustRun executes one tbstore invocation and returns stdout.
func mustRun(t *testing.T, args ...string) string {
	t.Helper()
	var out, errBuf bytes.Buffer
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("tbstore %v exited %d: %s", args, code, errBuf.String())
	}
	return out.String()
}

// seedTriageStore builds a warehouse with a steady signature across
// ten rate windows and a new signature in the newest window only.
func seedTriageStore(t *testing.T) (store, steadySig, newSig string) {
	t.Helper()
	store = filepath.Join(t.TempDir(), "wh")
	arch, err := archive.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	W := archive.WindowWidth
	mk := func(n int, at uint64) *snap.Snap {
		return &snap.Snap{Host: "h", Process: "app", PID: 100 + n, RuntimeID: at,
			Reason: "exception SIGSEGV", Signal: 11, Time: at,
			Modules: []snap.ModuleInfo{{Name: "app", Checksum: fmt.Sprintf("c%02d", n), DAGCount: 1}}}
	}
	steadySig = archive.SignSnap(mk(1, 0), nil).ID
	newSig = archive.SignSnap(mk(2, 0), nil).ID
	for win := uint64(0); win < 10; win++ {
		s := mk(1, win*W+5)
		if _, err := arch.Ingest(s, archive.SignSnap(s, nil)); err != nil {
			t.Fatal(err)
		}
	}
	s := mk(2, 9*W+50)
	if _, err := arch.Ingest(s, archive.SignSnap(s, nil)); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	return store, steadySig, newSig
}

// TestRegressionsSubcommand: the CLI flags the newest-window-only
// signature and keeps the steady one out of the default listing.
func TestRegressionsSubcommand(t *testing.T) {
	store, steadySig, newSig := seedTriageStore(t)

	out := mustRun(t, "-store", store, "regressions")
	if !strings.Contains(out, "new") || !strings.Contains(out, newSig) {
		t.Errorf("flagged listing missing the new signature %s:\n%s", newSig, out)
	}
	if strings.Contains(out, steadySig) {
		t.Errorf("steady signature %s in the flagged listing:\n%s", steadySig, out)
	}
	if !strings.Contains(out, "2 signature(s), 1 flagged") {
		t.Errorf("summary line wrong:\n%s", out)
	}

	all := mustRun(t, "-store", store, "regressions", "-all")
	for _, want := range []string{steadySig, newSig, "steady", "new"} {
		if !strings.Contains(all, want) {
			t.Errorf("-all listing missing %q:\n%s", want, all)
		}
	}
}

// TestRatesSubcommand: the histogram view prints every retained
// window and resolves prefixes.
func TestRatesSubcommand(t *testing.T) {
	store, steadySig, _ := seedTriageStore(t)
	out := mustRun(t, "-store", store, "rates", steadySig[:8])
	if !strings.Contains(out, steadySig+" steady") {
		t.Errorf("rates header missing verdict:\n%s", out)
	}
	if got := strings.Count(out, "window "); got != 10 {
		t.Errorf("rates printed %d windows, want 10:\n%s", got, out)
	}

	var errBuf bytes.Buffer
	if code := run([]string{"-store", store, "rates", "ffffffffffffffff"}, &bytes.Buffer{}, &errBuf); code != 1 {
		t.Errorf("unknown signature exited %d, want 1", code)
	}
}

// TestTopSince: -since restricts the listing to recently-seen
// buckets; a huge span is a no-op.
func TestTopSince(t *testing.T) {
	store, steadySig, newSig := seedTriageStore(t)
	full := mustRun(t, "-store", store, "top")
	if got := mustRun(t, "-store", store, "top", "-since", fmt.Sprint(uint64(1)<<62)); got != full {
		t.Errorf("huge -since changed the listing:\n%s\nvs\n%s", got, full)
	}
	// Both buckets were last seen in the newest window, so a one-window
	// span keeps both; the steady bucket's LastSeen is in window 9 too.
	_ = steadySig
	recent := mustRun(t, "-store", store, "top", "-since", fmt.Sprint(archive.WindowWidth))
	if !strings.Contains(recent, newSig) {
		t.Errorf("-since dropped the newest bucket:\n%s", recent)
	}

	// Age the steady bucket out: a store where it stops at window 5.
	store2 := filepath.Join(t.TempDir(), "wh2")
	arch, err := archive.Open(store2)
	if err != nil {
		t.Fatal(err)
	}
	W := archive.WindowWidth
	mk := func(n int, at uint64) *snap.Snap {
		return &snap.Snap{Host: "h", Process: "app", PID: 100 + n, RuntimeID: at,
			Reason: "exception SIGSEGV", Signal: 11, Time: at,
			Modules: []snap.ModuleInfo{{Name: "app", Checksum: fmt.Sprintf("c%02d", n), DAGCount: 1}}}
	}
	old := mk(1, 5*W)
	if _, err := arch.Ingest(old, archive.SignSnap(old, nil)); err != nil {
		t.Fatal(err)
	}
	oldSig := archive.SignSnap(old, nil).ID
	fresh := mk(2, 9*W)
	if _, err := arch.Ingest(fresh, archive.SignSnap(fresh, nil)); err != nil {
		t.Fatal(err)
	}
	freshSig := archive.SignSnap(fresh, nil).ID
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, "-store", store2, "top", "-since", fmt.Sprint(2*W))
	if strings.Contains(got, oldSig) {
		t.Errorf("-since kept a bucket last seen outside the span:\n%s", got)
	}
	if !strings.Contains(got, freshSig) {
		t.Errorf("-since dropped a bucket inside the span:\n%s", got)
	}
}

// TestTriageViewsJobsDeterminism: top, regressions -all, and clusters
// print byte-identical listings whether the fleet was ingested with 1
// worker or 16 — the satellite (a) guarantee extended to every new
// subcommand.
func TestTriageViewsJobsDeterminism(t *testing.T) {
	snapDir, mapsDir := buildFleet(t)
	outputs := map[string][]string{}
	for _, jobs := range []string{"1", "4", "16"} {
		store := filepath.Join(t.TempDir(), "wh")
		mustRun(t, "-store", store, "ingest", "-maps", mapsDir, "-jobs", jobs, snapDir)
		for _, sub := range [][]string{
			{"top", "-n", "0"},
			{"regressions", "-all"},
			{"clusters", "-maps", mapsDir},
		} {
			key := sub[0]
			outputs[key] = append(outputs[key], mustRun(t, append([]string{"-store", store}, sub...)...))
		}
	}
	for key, outs := range outputs {
		for i := 1; i < len(outs); i++ {
			if outs[i] != outs[0] {
				t.Errorf("%s output differs across -jobs widths:\n%s\nvs\n%s", key, outs[0], outs[i])
			}
		}
	}
}

// TestWatchSubcommand: watch polls a live daemon and prints one
// summary per tick with the health totals and flagged regressions.
func TestWatchSubcommand(t *testing.T) {
	store, _, newSig := seedTriageStore(t)
	arch, err := archive.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	srv := collect.NewServer(arch, collect.ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	out := mustRun(t, "watch", "-url", ts.URL, "-interval", "1ms", "-count", "2")
	for _, want := range []string{"tick 1:", "tick 2:", "state=ok", "buckets=2", "blobs=11", "flagged=1", newSig} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}

	// A dead daemon degrades to an unreachable note, not a failure.
	ts.Close()
	down := mustRun(t, "watch", "-url", ts.URL, "-interval", "1ms", "-count", "1")
	if !strings.Contains(down, "unreachable") {
		t.Errorf("watch against a dead daemon:\n%s", down)
	}
}
