package main

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
)

// syncBuffer is a goroutine-safe bytes.Buffer: watch writes from the
// test goroutine races the assertions otherwise.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func waitFor(t *testing.T, out *syncBuffer, substr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(out.String(), substr) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("never saw %q in watch output:\n%s", substr, out.String())
}

// TestWatchReconnectsAfterDaemonRestart: kill the watched daemon mid-
// watch, restart it on the same address, and the watch must ride the
// outage out — unreachable ticks with backoff, then a one-line
// reconnected notice, never an exit.
func TestWatchReconnectsAfterDaemonRestart(t *testing.T) {
	arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := collect.NewServer(arch, collect.ServerOptions{})
	go srv.Serve(l)

	var out syncBuffer
	var errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"watch", "-url", "http://" + addr, "-interval", "5ms", "-count", "400"}, &out, &errb)
	}()

	waitFor(t, &out, "state=ok")

	// Kill the daemon: the listener closes, polls start failing.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	waitFor(t, &out, "unreachable")

	// Restart on the same address; the watch must notice and say so.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := collect.NewServer(arch, collect.ServerOptions{})
	go srv2.Serve(l2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv2.Shutdown(ctx)
		cancel()
	}()

	waitFor(t, &out, "reconnected to http://"+addr)

	if code := <-done; code != 0 {
		t.Fatalf("watch exited %d: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "failed attempt(s)") {
		t.Errorf("reconnect notice does not count the outage:\n%s", text)
	}
	// The notice is one line.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "reconnected to") && strings.Count(line, "tick") != 1 {
			t.Errorf("malformed reconnect notice: %q", line)
		}
	}
}
