package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/recon"
	"traceback/internal/scenario"
)

// buildFleet writes the deterministic example snaps + mapfiles into a
// temp dir (the same layout tools/gensnaps commits under snaps/).
func buildFleet(t *testing.T) (snapDir, mapsDir string) {
	t.Helper()
	builts, err := scenario.All()
	if err != nil {
		t.Fatal(err)
	}
	snapDir = t.TempDir()
	for _, b := range builts {
		if _, err := b.Write(snapDir); err != nil {
			t.Fatal(err)
		}
	}
	return snapDir, filepath.Join(snapDir, "maps")
}

func TestIngestTopShowLifecycle(t *testing.T) {
	snapDir, mapsDir := buildFleet(t)
	store := filepath.Join(t.TempDir(), "wh")

	var out1, err1 bytes.Buffer
	if code := run([]string{"-store", store, "ingest", "-maps", mapsDir, "-jobs", "4", snapDir}, &out1, &err1); code != 0 {
		t.Fatalf("first ingest exited %d: %s", code, err1.String())
	}
	if !strings.Contains(out1.String(), "0 deduplicated") {
		t.Errorf("first ingest reported dups:\n%s", out1.String())
	}
	if strings.Contains(out1.String(), "(weak)") {
		t.Errorf("real fleet produced weak signatures:\n%s", out1.String())
	}

	// Second ingest of the same fleet: everything dedupes, zero stored,
	// zero new buckets, bucket counts double.
	var out2, err2 bytes.Buffer
	if code := run([]string{"-store", store, "ingest", "-maps", mapsDir, snapDir}, &out2, &err2); code != 0 {
		t.Fatalf("second ingest exited %d: %s", code, err2.String())
	}
	if !strings.Contains(out2.String(), "0 stored") || !strings.Contains(out2.String(), "0 new bucket(s)") {
		t.Errorf("second ingest stored new blobs:\n%s", out2.String())
	}

	var topOut, topErr bytes.Buffer
	if code := run([]string{"-store", store, "top", "-n", "3"}, &topOut, &topErr); code != 0 {
		t.Fatalf("top exited %d: %s", code, topErr.String())
	}
	if !strings.Contains(topOut.String(), " 1. x2") {
		t.Errorf("top bucket does not show doubled count:\n%s", topOut.String())
	}

	// show: stdout must be byte-identical to tbrecon's rendering of the
	// representative snap (Render + trailing newline, nothing else).
	a, err := archive.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	top := a.Buckets()[0]
	rep, err := a.LoadSnap(top.Rep)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	loader, err := recon.NewDirLoader(mapsDir)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := recon.NewPipeline(recon.NewMapCache(loader.Load), 0).ReconstructSnap(rep)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	recon.Render(&want, pt, recon.RenderOptions{})
	fmt.Fprintln(&want)

	var showOut, showErr bytes.Buffer
	if code := run([]string{"-store", store, "show", "-maps", mapsDir, top.Sig[:8]}, &showOut, &showErr); code != 0 {
		t.Fatalf("show exited %d: %s", code, showErr.String())
	}
	if !bytes.Equal(showOut.Bytes(), want.Bytes()) {
		t.Errorf("show stdout differs from tbrecon rendering:\n--- show ---\n%s\n--- tbrecon ---\n%s",
			showOut.String(), want.String())
	}
	if !strings.Contains(showErr.String(), "bucket "+top.Sig) {
		t.Errorf("bucket metadata missing from stderr:\n%s", showErr.String())
	}
}

// TestIngestJobsDeterminism: the flushed index.json is byte-identical
// whether the fleet was ingested with 1 worker or 16.
func TestIngestJobsDeterminism(t *testing.T) {
	snapDir, mapsDir := buildFleet(t)
	var indexes [][]byte
	for _, jobs := range []string{"1", "16"} {
		store := filepath.Join(t.TempDir(), "wh")
		var out, errBuf bytes.Buffer
		if code := run([]string{"-store", store, "ingest", "-maps", mapsDir, "-jobs", jobs, snapDir}, &out, &errBuf); code != 0 {
			t.Fatalf("-jobs %s exited %d: %s", jobs, code, errBuf.String())
		}
		idx, err := os.ReadFile(filepath.Join(store, "index.json"))
		if err != nil {
			t.Fatal(err)
		}
		indexes = append(indexes, idx)
	}
	if !bytes.Equal(indexes[0], indexes[1]) {
		t.Errorf("index.json differs between -jobs 1 and -jobs 16:\n%s\nvs\n%s", indexes[0], indexes[1])
	}
}

// TestIngestWeakFallback: with no mapfiles the snaps cannot be
// reconstructed, but the warehouse must keep them anyway, bucketed by
// the weak metadata signature.
func TestIngestWeakFallback(t *testing.T) {
	snapDir, _ := buildFleet(t)
	emptyMaps := t.TempDir()
	store := filepath.Join(t.TempDir(), "wh")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-store", store, "ingest", "-maps", emptyMaps, snapDir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "(weak)") {
		t.Errorf("no weak-signature markers in output:\n%s", out.String())
	}
	a, err := archive.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.NumBlobs() == 0 {
		t.Error("weak-path ingest stored nothing")
	}
	for _, b := range a.Buckets() {
		if !b.Weak {
			t.Errorf("bucket %s not marked weak", b.Sig)
		}
	}
}

func TestGCAndLs(t *testing.T) {
	snapDir, mapsDir := buildFleet(t)
	store := filepath.Join(t.TempDir(), "wh")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-store", store, "ingest", "-maps", mapsDir, snapDir}, &out, &errBuf); code != 0 {
		t.Fatalf("ingest exited %d: %s", code, errBuf.String())
	}

	// Every blob is some bucket's representative here (one blob per
	// bucket), so -keep-reps makes this sweep a no-op by design.
	var repsOut, repsErr bytes.Buffer
	if code := run([]string{"-store", store, "gc", "-max-blobs", "2", "-keep-reps"}, &repsOut, &repsErr); code != 0 {
		t.Fatalf("gc -keep-reps exited %d: %s", code, repsErr.String())
	}
	if !strings.Contains(repsOut.String(), "removed 0 blob(s)") {
		t.Errorf("gc -keep-reps evicted a representative:\n%s", repsOut.String())
	}

	var gcOut, gcErr bytes.Buffer
	if code := run([]string{"-store", store, "gc", "-max-blobs", "2"}, &gcOut, &gcErr); code != 0 {
		t.Fatalf("gc exited %d: %s", code, gcErr.String())
	}
	if !strings.Contains(gcOut.String(), "store holds 2 blob(s)") {
		t.Errorf("gc did not shrink to 2 blobs:\n%s", gcOut.String())
	}

	var lsOut, lsErr bytes.Buffer
	if code := run([]string{"-store", store, "ls", "-v"}, &lsOut, &lsErr); code != 0 {
		t.Fatalf("ls exited %d: %s", code, lsErr.String())
	}
	if !strings.Contains(lsOut.String(), "2 blob(s)") {
		t.Errorf("ls disagrees with gc:\n%s", lsOut.String())
	}
	// Bucket history (counts, hosts) survives eviction and still lists.
	if !strings.Contains(lsOut.String(), "x1") {
		t.Errorf("evicted buckets vanished from ls:\n%s", lsOut.String())
	}
}

func TestIngestSkipsNonSnapEntries(t *testing.T) {
	snapDir, mapsDir := buildFleet(t)
	if err := os.WriteFile(filepath.Join(snapDir, "NOTES.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(t.TempDir(), "wh")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-store", store, "ingest", "-maps", mapsDir, snapDir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "skipping") || !strings.Contains(errBuf.String(), "NOTES.txt") {
		t.Errorf("no skip warning for NOTES.txt:\n%s", errBuf.String())
	}
	if strings.Contains(out.String(), "skipping") {
		t.Error("skip warning leaked to stdout")
	}
}

func TestUnknownCommand(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-store", t.TempDir(), "frobnicate"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "unknown command") {
		t.Errorf("no usage hint:\n%s", errBuf.String())
	}
}

// TestMetricsFlagKeepsStdoutClean: every subcommand accepts -metrics,
// writes its telemetry only to the chosen destination, and leaves
// stdout byte-identical to a run without the flag.
func TestMetricsFlagKeepsStdoutClean(t *testing.T) {
	snapDir, mapsDir := buildFleet(t)
	store := filepath.Join(t.TempDir(), "wh")
	var out, errb bytes.Buffer
	if code := run([]string{"-store", store, "ingest", "-maps", mapsDir, snapDir}, &out, &errb); code != 0 {
		t.Fatalf("ingest exited %d: %s", code, errb.String())
	}

	for _, sub := range [][]string{
		{"ls", "-v"},
		{"top", "-n", "3"},
		{"gc", "-max-blobs", "1000"},
	} {
		name := sub[0]
		var plain, plainErr bytes.Buffer
		if code := run(append([]string{"-store", store}, sub...), &plain, &plainErr); code != 0 {
			t.Fatalf("%s exited %d: %s", name, code, plainErr.String())
		}

		mfile := filepath.Join(t.TempDir(), name+".prom")
		var metered, meteredErr bytes.Buffer
		args := append([]string{"-store", store, "-metrics", mfile}, sub...)
		if code := run(args, &metered, &meteredErr); code != 0 {
			t.Fatalf("%s -metrics exited %d: %s", name, code, meteredErr.String())
		}
		if plain.String() != metered.String() {
			t.Errorf("%s: -metrics changed stdout:\n--- without ---\n%s--- with ---\n%s",
				name, plain.String(), metered.String())
		}
		prom, err := os.ReadFile(mfile)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(prom), "arch_") {
			t.Errorf("%s: metrics file carries no arch_ telemetry:\n%s", name, prom)
		}
	}

	// show writes bucket metadata to stderr and the trace to stdout;
	// -metrics must leave both streams' stdout bytes untouched.
	var lsOut, lsErr bytes.Buffer
	if code := run([]string{"-store", store, "ls"}, &lsOut, &lsErr); code != 0 {
		t.Fatalf("ls exited %d: %s", code, lsErr.String())
	}
	sig := strings.Fields(lsOut.String())[0]
	var plainShow, e1 bytes.Buffer
	if code := run([]string{"-store", store, "show", "-maps", mapsDir, sig}, &plainShow, &e1); code != 0 {
		t.Fatalf("show exited %d: %s", code, e1.String())
	}
	mfile := filepath.Join(t.TempDir(), "show.json")
	var meteredShow, e2 bytes.Buffer
	if code := run([]string{"-store", store, "-metrics", mfile, "show", "-maps", mapsDir, sig}, &meteredShow, &e2); code != 0 {
		t.Fatalf("show -metrics exited %d: %s", code, e2.String())
	}
	if plainShow.String() != meteredShow.String() {
		t.Error("show: -metrics changed the trace on stdout")
	}
	if doc, err := os.ReadFile(mfile); err != nil || !strings.Contains(string(doc), "arch_") {
		t.Errorf("show: metrics JSON missing arch_ telemetry (err %v)", err)
	}
}
