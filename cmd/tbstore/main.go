// tbstore is the fleet-side snap warehouse CLI (the support
// organization's triage tool): it ingests snap files into a
// content-addressed, crash-signature-bucketed archive and answers
// "which fault is hurting the fleet most?" without re-reconstructing
// anything.
//
//	tbstore -store wh ingest -maps build -jobs 8 snaps/
//	tbstore -store wh ls
//	tbstore -store wh top -n 5 -since 500000
//	tbstore -store wh show -maps build 2e2b7aab
//	tbstore -store wh regressions
//	tbstore -store wh rates 2e2b7aab
//	tbstore -store wh clusters -maps build
//	tbstore watch -url http://collector:7321
//	tbstore -store wh gc -max-blobs 1000 -max-bytes 100000000 -keep-reps
//
// `show` reconstructs a bucket's representative snap on demand and
// writes the trace to stdout byte-identically to `tbrecon` on that
// snap; bucket metadata goes to stderr so the trace stays pipeable.
//
// The fleet-health views (`regressions`, `rates`, `clusters`, `top
// -since`) are deterministic functions of the warehouse index: the
// same store answers byte-identically however it was ingested, and
// identically to a tbcollectd daemon serving the same warehouse over
// /v1/regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/recon"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
	"traceback/internal/triage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges made explicit for in-process
// CLI tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tbstore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	store := fs.String("store", "store", "warehouse directory")
	metricsTo := fs.String("metrics", "", "write archive+pipeline metrics to this file when done (- = stderr; .json = JSON, else Prometheus text)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: tbstore [-store dir] <ingest|ls|top|show|regressions|rates|clusters|watch|gc> [flags] [args]")
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tbstore:", err)
		return 1
	}

	cmd, rest := fs.Arg(0), fs.Args()[1:]
	c := &cli{store: *store, stdout: stdout, stderr: stderr}
	var err error
	switch cmd {
	case "ingest":
		err = c.ingest(rest)
	case "ls":
		err = c.ls(rest)
	case "top":
		err = c.top(rest)
	case "show":
		err = c.show(rest)
	case "regressions":
		err = c.regressions(rest)
	case "rates":
		err = c.rates(rest)
	case "clusters":
		err = c.clusters(rest)
	case "watch":
		err = c.watch(rest)
	case "gc":
		err = c.gc(rest)
	default:
		return fail(fmt.Errorf("unknown command %q (want ingest|ls|top|show|regressions|rates|clusters|watch|gc)", cmd))
	}
	if err != nil {
		return fail(err)
	}
	if *metricsTo != "" && c.reg != nil {
		if werr := writeMetrics(*metricsTo, stderr, c); werr != nil {
			return fail(werr)
		}
	}
	if c.failed > 0 {
		return 1
	}
	return 0
}

type cli struct {
	store          string
	stdout, stderr io.Writer
	reg            metricsWriter
	treg           *telemetry.Registry
	failed         int
}

type metricsWriter interface {
	WritePrometheus(io.Writer) error
	WriteJSON(io.Writer) error
}

// openArch opens the warehouse with a fresh registry bound, so every
// subcommand — not just ingest — exposes arch_* self-telemetry via
// -metrics. Metrics go to the -metrics destination only; stdout
// output is byte-identical with and without the flag.
func (c *cli) openArch() (*archive.Archive, error) {
	reg := telemetry.New()
	arch, err := archive.OpenWith(c.store, archive.Options{Telemetry: reg})
	if err != nil {
		return nil, err
	}
	c.reg = reg
	c.treg = reg
	return arch, nil
}

// closeArch folds arch.Close's error — a failed index flush, e.g.
// disk full writing index.json — into the command's result instead of
// discarding it, so the process exits nonzero with a diagnostic.
func closeArch(arch *archive.Archive, err *error) {
	if cerr := arch.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}

// ingest reconstructs every input snap on the parallel pipeline (one
// shared mapfile cache across the whole batch), fingerprints each
// crash, and folds them into the warehouse with -jobs concurrent
// ingest workers. Sources that cannot be reconstructed (mapfiles
// missing) still archive under a weak metadata signature; sources
// that cannot even be loaded are reported and skipped.
func (c *cli) ingest(args []string) (err error) {
	fs := flag.NewFlagSet("tbstore ingest", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	mapsDir := fs.String("maps", ".", "directory containing *.map.json mapfiles")
	jobs := fs.Int("jobs", 0, "reconstruction + ingest worker count (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("ingest: need snap files or directories")
	}
	paths, err := expandSnapArgs(fs.Args(), c.stderr)
	if err != nil {
		return err
	}

	loader, err := recon.NewDirLoader(*mapsDir)
	if err != nil {
		return err
	}
	cache := recon.NewMapCache(loader.Load)
	pipe := recon.NewPipeline(cache, *jobs)
	c.reg = pipe.Registry()

	arch, err := archive.OpenWith(c.store, archive.Options{Telemetry: pipe.Registry()})
	if err != nil {
		return err
	}
	defer closeArch(arch, &err)

	sources := make([]recon.Source, len(paths))
	for i, p := range paths {
		sources[i] = recon.FileSource(p)
	}
	results := pipe.Run(sources)

	// Concurrent ingest over the reconstructed batch: the archive
	// single-flights identical snaps, so worker count only affects
	// wall clock, never the resulting index.
	type outcome struct {
		res archive.IngestResult
		err error
	}
	outs := make([]outcome, len(results))
	var wg sync.WaitGroup
	sem := make(chan struct{}, pipe.Jobs())
	for i := range results {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			outs[i].res, outs[i].err = ingestOne(arch, &results[i])
		}(i)
	}
	wg.Wait()

	var stored, dups, newBuckets int
	for i := range outs {
		if outs[i].err != nil {
			fmt.Fprintf(c.stderr, "tbstore: %s: %v\n", results[i].Name, outs[i].err)
			c.failed++
			continue
		}
		r := outs[i].res
		state := "stored"
		if r.Dup {
			state = "dup"
			dups++
		} else {
			stored++
		}
		if r.NewBucket {
			newBuckets++
		}
		weak := ""
		if r.Sig.Weak {
			weak = " (weak)"
		}
		fmt.Fprintf(c.stdout, "%s: %s %s -> bucket %s%s\n",
			results[i].Name, state, r.Sum[:12], r.Sig.ID, weak)
	}
	fmt.Fprintf(c.stdout, "ingested %d snap(s): %d stored, %d deduplicated, %d new bucket(s); store holds %d blob(s) in %d bucket(s), %d bytes\n",
		stored+dups, stored, dups, newBuckets, arch.NumBlobs(), len(arch.Buckets()), arch.StoredBytes())
	return nil
}

// ingestOne archives one pipeline result. A reconstruction failure
// downgrades to the weak metadata signature so the snap is preserved
// either way — the warehouse must never drop evidence.
func ingestOne(arch *archive.Archive, res *recon.Result) (archive.IngestResult, error) {
	if res.Err == nil {
		return arch.Ingest(res.Trace.Snap, archive.FromTrace(res.Trace))
	}
	f, err := os.Open(res.Name)
	if err != nil {
		return archive.IngestResult{}, res.Err
	}
	defer f.Close()
	s, err := snap.LoadAuto(f)
	if err != nil {
		return archive.IngestResult{}, res.Err
	}
	return arch.Ingest(s, archive.SignSnap(s, nil))
}

func (c *cli) ls(args []string) (err error) {
	fs := flag.NewFlagSet("tbstore ls", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	verbose := fs.Bool("v", false, "also list each bucket's blobs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := c.openArch()
	if err != nil {
		return err
	}
	defer closeArch(arch, &err)
	buckets := arch.Buckets()
	for _, b := range buckets {
		fmt.Fprintf(c.stdout, "%s  x%-4d %s  hosts=%s\n",
			b.Sig, b.Count, b.Title, strings.Join(b.Hosts, ","))
		if *verbose {
			for _, ref := range b.Snaps {
				fmt.Fprintf(c.stdout, "    %s  %6d bytes  %s/%s  t=%d  %s\n",
					ref.Sum[:12], ref.Bytes, ref.Host, ref.Process, ref.Time, ref.Reason)
			}
		}
	}
	fmt.Fprintf(c.stdout, "%d bucket(s), %d blob(s), %d bytes\n",
		len(buckets), arch.NumBlobs(), arch.StoredBytes())
	return nil
}

// top is the triage view: buckets by occurrence count (ties broken
// by signature, so the listing is byte-deterministic).
func (c *cli) top(args []string) (err error) {
	fs := flag.NewFlagSet("tbstore top", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	n := fs.Int("n", 10, "buckets to show")
	since := fs.Uint64("since", 0, "only buckets last seen within the newest N snap-time cycles (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := c.openArch()
	if err != nil {
		return err
	}
	defer closeArch(arch, &err)
	buckets := arch.Buckets()
	if *since > 0 {
		cut := uint64(0)
		if newest := arch.NewestTime(); newest > *since {
			cut = newest - *since
		}
		kept := buckets[:0]
		for _, b := range buckets {
			if b.LastSeen >= cut {
				kept = append(kept, b)
			}
		}
		buckets = kept
	}
	if *n > 0 && len(buckets) > *n {
		buckets = buckets[:*n]
	}
	for i, b := range buckets {
		fmt.Fprintf(c.stdout, "%2d. x%-4d %s  %s  (hosts %s, seen %d..%d)\n",
			i+1, b.Count, b.Sig, b.Title, strings.Join(b.Hosts, ","), b.FirstSeen, b.LastSeen)
	}
	return nil
}

// show reconstructs a bucket's representative snap on demand. The
// trace on stdout is byte-identical to `tbrecon` over the same snap;
// everything else goes to stderr.
func (c *cli) show(args []string) (err error) {
	fs := flag.NewFlagSet("tbstore show", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	mapsDir := fs.String("maps", ".", "directory containing *.map.json mapfiles")
	srcDir := fs.String("src", "", "directory containing source files (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show: need one bucket signature (prefix ok)")
	}
	arch, err := c.openArch()
	if err != nil {
		return err
	}
	defer closeArch(arch, &err)
	b, err := arch.Bucket(fs.Arg(0))
	if err != nil {
		return err
	}
	if b.Rep == "" {
		return fmt.Errorf("show: bucket %s has no resident snaps (evicted by gc)", b.Sig)
	}
	fmt.Fprintf(c.stderr, "bucket %s: %s\n", b.Sig, b.Title)
	fmt.Fprintf(c.stderr, "count %d, hosts %s, seen %d..%d, representative %s\n",
		b.Count, strings.Join(b.Hosts, ","), b.FirstSeen, b.LastSeen, b.Rep[:12])

	s, err := arch.LoadSnap(b.Rep)
	if err != nil {
		return err
	}
	loader, err := recon.NewDirLoader(*mapsDir)
	if err != nil {
		return err
	}
	pipe := recon.NewPipeline(recon.NewMapCache(loader.Load), 0)
	pt, err := pipe.ReconstructSnap(s)
	if err != nil {
		return err
	}
	opts := recon.RenderOptions{}
	if *srcDir != "" {
		cache := recon.NewSourceCache(func(file string) []string {
			b, err := os.ReadFile(filepath.Join(*srcDir, filepath.Base(file)))
			if err != nil {
				return nil
			}
			return strings.Split(string(b), "\n")
		})
		opts.Source = cache.Lines
	}
	recon.Render(c.stdout, pt, opts)
	fmt.Fprintln(c.stdout)
	return nil
}

// regressions classifies every bucket against the warehouse's newest
// snap time. Default output is the flagged set (new + spiking); -all
// lists every signature with its verdict. Deterministic given the
// index, and identical to a daemon's /v1/regressions over the same
// warehouse.
func (c *cli) regressions(args []string) (err error) {
	fs := flag.NewFlagSet("tbstore regressions", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	all := fs.Bool("all", false, "list every signature, not only new/spiking")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := c.openArch()
	if err != nil {
		return err
	}
	defer closeArch(arch, &err)
	rep := triage.New(arch, nil, triage.Config{}, c.treg).Regressions()
	rows := rep.Flagged()
	if *all {
		rows = rep.Assessments
	}
	for _, a := range rows {
		fmt.Fprintf(c.stdout, "%-8s x%-4d %s  %s  (recent %.2f/win, base %.2f/win)\n",
			a.Class, a.Recent, a.Sig, a.Title, a.RecentRate, a.BaseRate)
	}
	fmt.Fprintf(c.stdout, "%d signature(s), %d flagged; now=%d window=%d\n",
		len(rep.Assessments), len(rep.Flagged()), rep.Now, rep.Window)
	return nil
}

// rates prints one signature's crash-rate histogram and verdict.
func (c *cli) rates(args []string) (err error) {
	fs := flag.NewFlagSet("tbstore rates", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("rates: need one bucket signature (prefix ok)")
	}
	arch, err := c.openArch()
	if err != nil {
		return err
	}
	defer closeArch(arch, &err)
	rr, err := triage.New(arch, nil, triage.Config{}, c.treg).Rates(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintln(c.stdout, rr)
	for _, w := range rr.Windows {
		fmt.Fprintf(c.stdout, "  window %d..%d  x%d\n", w.Start, w.Start+rr.Window-1, w.Count)
	}
	return nil
}

// clusters groups near-duplicate signatures by fault-view similarity;
// -maps supplies the mapfiles exemplar reconstruction needs.
func (c *cli) clusters(args []string) (err error) {
	fs := flag.NewFlagSet("tbstore clusters", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	mapsDir := fs.String("maps", ".", "directory containing *.map.json mapfiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := c.openArch()
	if err != nil {
		return err
	}
	defer closeArch(arch, &err)
	loader, err := recon.NewDirLoader(*mapsDir)
	if err != nil {
		return err
	}
	rep, err := triage.New(arch, recon.NewMapCache(loader.Load), triage.Config{}, c.treg).Clusters()
	if err != nil {
		return err
	}
	for i, cl := range rep.Clusters {
		mark := ""
		if cl.Unclustered {
			mark = "  (unclustered)"
		}
		fmt.Fprintf(c.stdout, "%2d. x%-4d %s  %s%s\n", i+1, cl.Count, cl.Lead, cl.Title, mark)
		if len(cl.Members) > 1 {
			for _, m := range cl.Members {
				fmt.Fprintf(c.stdout, "      x%-4d %s  d=%.3f  %s\n", m.Count, m.Sig, m.Distance, m.Title)
			}
		}
	}
	fmt.Fprintf(c.stdout, "%d cluster(s) at threshold %.2f\n", len(rep.Clusters), rep.Threshold)
	return nil
}

// watch polls a tbcollectd daemon's health and regression views,
// printing one summary per tick — the terminal dashboard for a fleet
// collector. An unreachable daemon (killed, restarting, network blip)
// does not end the watch: ticks keep coming with jittered exponential
// backoff between them, and the first successful poll afterward prints
// a one-line reconnected notice so the outage is visible in the log.
func (c *cli) watch(args []string) error {
	fs := flag.NewFlagSet("tbstore watch", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	url := fs.String("url", "http://localhost:7321", "tbcollectd base URL")
	interval := fs.Duration("interval", 5*time.Second, "poll interval")
	count := fs.Int("count", 0, "ticks before exiting (0 = forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	base := strings.TrimRight(*url, "/")
	down := 0 // consecutive unreachable ticks
	for tick := 1; *count == 0 || tick <= *count; tick++ {
		if tick > 1 {
			d := *interval
			if down > 0 {
				// The daemon is away: back off exponentially (capped at
				// 8x the interval) with jitter in [d/2, d], so a fleet of
				// watchers does not hammer a restarting daemon in
				// lockstep.
				for i := 1; i < down && d < 8*(*interval); i++ {
					d *= 2
				}
				if d > 8*(*interval) {
					d = 8 * (*interval)
				}
				d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
			}
			time.Sleep(d)
		}
		if c.watchTick(client, base, tick) {
			if down > 0 {
				fmt.Fprintf(c.stdout, "tick %d: reconnected to %s after %d failed attempt(s)\n", tick, base, down)
			}
			down = 0
		} else {
			down++
		}
	}
	return nil
}

// watchTick polls once; false means the daemon was unreachable (the
// caller's cue to back off and announce the reconnect later).
func (c *cli) watchTick(client *http.Client, base string, tick int) bool {
	var hr collect.HealthResponse
	if err := getJSON(client, base+collect.PathHealth, &hr); err != nil {
		fmt.Fprintf(c.stdout, "tick %d: %s unreachable: %v\n", tick, base, err)
		return false
	}
	var rep triage.Report
	if err := getJSON(client, base+collect.PathRegressions, &rep); err != nil {
		fmt.Fprintf(c.stdout, "tick %d: state=%s (regressions: %v)\n", tick, hr.State, err)
		return true
	}
	flagged := rep.Flagged()
	fmt.Fprintf(c.stdout, "tick %d: state=%s up=%ds buckets=%d blobs=%d bytes=%d inflight=%d flagged=%d\n",
		tick, hr.State, hr.UptimeSec, hr.Buckets, hr.Blobs, hr.StoredBytes, hr.Inflight, len(flagged))
	for _, a := range flagged {
		fmt.Fprintf(c.stdout, "  %-8s x%-4d %s  %s\n", a.Class, a.Recent, a.Sig, a.Title)
	}
	return true
}

// getJSON fetches and decodes one JSON endpoint; non-2xx statuses
// with a JSON body (healthz mid-drain answers 503) still decode.
func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(into)
}

func (c *cli) gc(args []string) (err error) {
	fs := flag.NewFlagSet("tbstore gc", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	maxAge := fs.Uint64("max-age", 0, "evict blobs older than newest-N (snap-time cycles; 0 = no limit)")
	maxBlobs := fs.Int("max-blobs", 0, "keep at most N blobs (0 = no limit)")
	maxBytes := fs.Int64("max-bytes", 0, "keep at most N compressed bytes (0 = no limit)")
	keepReps := fs.Bool("keep-reps", false, "never count/byte-evict a bucket's representative snap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := c.openArch()
	if err != nil {
		return err
	}
	defer closeArch(arch, &err)
	res, err := arch.GC(archive.GCPolicy{
		MaxAge: *maxAge, MaxBlobs: *maxBlobs, MaxBytes: *maxBytes, KeepReps: *keepReps,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(c.stdout, "gc: removed %d blob(s), %d bytes; store holds %d blob(s), %d bytes\n",
		res.Removed, res.Bytes, arch.NumBlobs(), arch.StoredBytes())
	return nil
}

// expandSnapArgs expands files and directories into a deduplicated,
// sorted snap path list, warning about (and skipping) directory
// entries that are not snap files.
func expandSnapArgs(args []string, warn io.Writer) ([]string, error) {
	seen := map[string]bool{}
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			add(arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		found := 0
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !isSnapName(name) {
				fmt.Fprintf(warn, "tbstore: skipping %s: not a snap file\n", filepath.Join(arg, name))
				continue
			}
			add(filepath.Join(arg, name))
			found++
		}
		if found == 0 {
			return nil, fmt.Errorf("%s: no *.snap.json[.gz] files", arg)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

func isSnapName(name string) bool {
	return strings.HasSuffix(name, ".snap.json") || strings.HasSuffix(name, ".snap.json.gz")
}

func writeMetrics(dest string, stderr io.Writer, c *cli) error {
	if dest == "-" {
		return c.reg.WritePrometheus(stderr)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(dest, ".json") {
		return c.reg.WriteJSON(f)
	}
	return c.reg.WritePrometheus(f)
}
