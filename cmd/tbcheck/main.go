// tbcheck statically verifies instrumentation invariants: probe
// coverage, probe safety, module/mapfile consistency, and trace-record
// decodability (the internal/verify pass suite). It accepts MiniC
// source (.mc, compiled and instrumented in memory), instrumented
// binary modules (.tbm, with the mapfile found alongside or given via
// -map), or bare mapfiles (.map.json, structural validation only).
//
//	tbcheck app.mc
//	tbcheck -json build/app.tb.tbm
//	tbcheck -map build/app.map.json build/app.tb.tbm
//	tbcheck -broken internal/verify/testdata/corpus/*.tbm
//
// With -fleet, all inputs together form one module set and the
// cross-module pass suite (internal/verify/fleet) runs over it
// instead: the static RPC call graph must have no unserved endpoints,
// every recv must reply on every path, and no module's probe words
// may make a trace buffer ambiguous to backward mining. A directory
// argument stands for the .tbm/.mc files inside it; with -broken,
// each directory is one seeded-broken fleet that must be flagged.
//
//	tbcheck -fleet examples/crossmachine/client.mc examples/crossmachine/server.mc
//	tbcheck -fleet -broken internal/verify/testdata/corpus/fleet/*/
//
// Exit status: 0 clean (or, with -broken, every input flagged), 1 at
// least one error-level diagnostic (with -werror: or warning), 2 bad
// usage or unreadable input. With -json, one JSON result object is
// printed per input, one per line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/verify"
	"traceback/internal/verify/fleet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	json     bool
	werror   bool
	broken   bool
	fleet    bool
	passes   string
	maxPaths int
	mapPath  string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tbcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.BoolVar(&cfg.json, "json", false, "emit one JSON result per input instead of text diagnostics")
	fs.BoolVar(&cfg.werror, "werror", false, "treat warnings as errors for the exit status")
	fs.BoolVar(&cfg.broken, "broken", false, "negative mode: every input must produce at least one error")
	fs.BoolVar(&cfg.fleet, "fleet", false, "cross-module mode: verify all inputs together as one module set")
	fs.StringVar(&cfg.passes, "passes", "", "comma-separated pass subset (default all): "+
		strings.Join(verify.AllPasses(), ",")+"; with -fleet: "+strings.Join(fleet.AllPasses(), ","))
	fs.IntVar(&cfg.maxPaths, "maxpaths", 0, "cap on per-DAG path enumeration (0 = default)")
	fs.StringVar(&cfg.mapPath, "map", "", "explicit mapfile for a .tbm input (default: sibling <name>.map.json)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tbcheck [flags] <input.mc|input.tbm|input.map.json> ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if cfg.mapPath != "" && fs.NArg() > 1 {
		fmt.Fprintln(stderr, "tbcheck: -map applies to a single .tbm input")
		return 2
	}
	if cfg.fleet {
		if cfg.mapPath != "" {
			fmt.Fprintln(stderr, "tbcheck: -map has no meaning in -fleet mode")
			return 2
		}
		return runFleet(cfg, fs.Args(), stdout, stderr)
	}

	opts := verify.Options{MaxPaths: cfg.maxPaths}
	if cfg.passes != "" {
		opts.Passes = strings.Split(cfg.passes, ",")
		known := map[string]bool{}
		for _, p := range verify.AllPasses() {
			known[p] = true
		}
		for _, p := range opts.Passes {
			if !known[p] {
				fmt.Fprintf(stderr, "tbcheck: unknown pass %q\n", p)
				return 2
			}
		}
	}

	status := 0
	for _, in := range fs.Args() {
		res, err := checkOne(in, cfg, opts)
		if err != nil {
			fmt.Fprintf(stderr, "tbcheck: %s: %v\n", in, err)
			return 2
		}
		if cfg.json {
			if err := res.WriteJSON(stdout); err != nil {
				fmt.Fprintln(stderr, "tbcheck:", err)
				return 2
			}
		} else {
			res.WriteText(stdout)
		}
		failed := res.NumError > 0 || (cfg.werror && res.NumWarn > 0)
		if cfg.broken {
			if res.NumError == 0 {
				fmt.Fprintf(stderr, "tbcheck: %s: expected error-level diagnostics, found none\n", in)
				status = max(status, 1)
			} else if !cfg.json {
				fmt.Fprintf(stdout, "%s: flagged as expected (%d errors)\n", in, res.NumError)
			}
			continue
		}
		if failed {
			status = max(status, 1)
		} else if !cfg.json {
			fmt.Fprintf(stdout, "%s: %s verified clean (%d warnings)\n", in, res.Module, res.NumWarn)
		}
	}
	return status
}

// runFleet is -fleet mode: all inputs form one module set, verified
// together by the cross-module pass suite. With -broken, each
// directory argument is instead its own seeded-broken fleet, and
// every one must be flagged.
func runFleet(cfg config, args []string, stdout, stderr io.Writer) int {
	opts := fleet.Options{}
	if cfg.passes != "" {
		opts.Passes = strings.Split(cfg.passes, ",")
		known := map[string]bool{}
		for _, p := range fleet.AllPasses() {
			known[p] = true
		}
		for _, p := range opts.Passes {
			if !known[p] {
				fmt.Fprintf(stderr, "tbcheck: unknown fleet pass %q\n", p)
				return 2
			}
		}
	}

	groups := [][]string{args}
	if cfg.broken {
		groups = nil
		for _, a := range args {
			groups = append(groups, []string{a})
		}
	}

	status := 0
	for _, group := range groups {
		var inputs []fleet.Input
		for _, a := range group {
			ins, err := fleetInputs(a)
			if err != nil {
				fmt.Fprintf(stderr, "tbcheck: %s: %v\n", a, err)
				return 2
			}
			inputs = append(inputs, ins...)
		}
		if len(inputs) == 0 {
			fmt.Fprintf(stderr, "tbcheck: %s: no fleet modules found\n", strings.Join(group, " "))
			return 2
		}
		res := fleet.Verify(inputs, opts)
		label := strings.Join(group, " ")
		if cfg.json {
			if err := res.WriteJSON(stdout); err != nil {
				fmt.Fprintln(stderr, "tbcheck:", err)
				return 2
			}
		} else {
			res.WriteText(stdout)
		}
		if cfg.broken {
			if res.NumError == 0 {
				fmt.Fprintf(stderr, "tbcheck: %s: expected error-level diagnostics, found none\n", label)
				status = max(status, 1)
			} else if !cfg.json {
				fmt.Fprintf(stdout, "%s: flagged as expected (%d errors)\n", label, res.NumError)
			}
			continue
		}
		if res.NumError > 0 || (cfg.werror && res.NumWarn > 0) {
			status = max(status, 1)
		} else if !cfg.json {
			fmt.Fprintf(stdout, "%s: fleet of %d module(s) verified clean (%d warnings)\n",
				label, len(res.Modules), res.NumWarn)
		}
	}
	return status
}

// fleetInputs loads one -fleet argument: a .mc source (compiled and
// instrumented in memory), a .tbm module, or a directory standing for
// the .tbm/.mc files directly inside it (sorted, so runs are
// deterministic).
func fleetInputs(in string) ([]fleet.Input, error) {
	st, err := os.Stat(in)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		one, err := fleetInput(in)
		if err != nil {
			return nil, err
		}
		return []fleet.Input{one}, nil
	}
	entries, err := os.ReadDir(in)
	if err != nil {
		return nil, err
	}
	var out []fleet.Input
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasSuffix(name, ".tbm") && !strings.HasSuffix(name, ".mc") {
			continue
		}
		one, err := fleetInput(filepath.Join(in, name))
		if err != nil {
			return nil, err
		}
		out = append(out, one)
	}
	return out, nil
}

func fleetInput(in string) (fleet.Input, error) {
	if strings.HasSuffix(in, ".mc") || strings.HasSuffix(in, ".c") {
		src, err := os.ReadFile(in)
		if err != nil {
			return fleet.Input{}, err
		}
		name := strings.TrimSuffix(strings.TrimSuffix(filepath.Base(in), ".mc"), ".c")
		mod, err := minic.Compile(name, filepath.Base(in), string(src))
		if err != nil {
			return fleet.Input{}, err
		}
		res, err := core.Instrument(mod, core.Options{})
		if err != nil {
			return fleet.Input{}, err
		}
		return fleet.Input{Module: res.Module, Path: in}, nil
	}
	f, err := os.Open(in)
	if err != nil {
		return fleet.Input{}, err
	}
	m, err := module.Read(f)
	f.Close()
	if err != nil {
		return fleet.Input{}, err
	}
	return fleet.Input{Module: m, Path: in}, nil
}

// checkOne verifies a single input path.
func checkOne(in string, cfg config, opts verify.Options) (*verify.Result, error) {
	switch {
	case strings.HasSuffix(in, ".map.json"):
		return checkMapOnly(in)
	case strings.HasSuffix(in, ".mc") || strings.HasSuffix(in, ".c"):
		return checkSource(in, opts)
	default:
		return checkModule(in, cfg.mapPath, opts)
	}
}

// checkSource compiles and instruments MiniC source in memory, then
// verifies the instrumenter's own output.
func checkSource(in string, opts verify.Options) (*verify.Result, error) {
	src, err := os.ReadFile(in)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(strings.TrimSuffix(filepath.Base(in), ".mc"), ".c")
	mod, err := minic.Compile(name, filepath.Base(in), string(src))
	if err != nil {
		return nil, err
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		return nil, err
	}
	return verify.Verify(res.Module, res.Map, opts), nil
}

// checkModule reads an instrumented .tbm and pairs it with a mapfile:
// the -map flag, or a sibling <base>.map.json (with an optional .tb
// infix, matching tbinstr's naming). A missing sibling degrades to
// module-only verification.
func checkModule(in, mapPath string, opts verify.Options) (*verify.Result, error) {
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	m, err := module.Read(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if mapPath == "" {
		base := strings.TrimSuffix(in, ".tbm")
		base = strings.TrimSuffix(base, ".tb")
		if _, err := os.Stat(base + ".map.json"); err == nil {
			mapPath = base + ".map.json"
		}
	}
	var mf *module.MapFile
	if mapPath != "" {
		f, err := os.Open(mapPath)
		if err != nil {
			return nil, err
		}
		mf, err = module.LoadMapFile(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return verify.Verify(m, mf, opts), nil
}

// checkMapOnly structurally validates a bare mapfile.
func checkMapOnly(in string) (*verify.Result, error) {
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	mf, err := module.LoadMapFile(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	res := &verify.Result{Module: mf.ModuleName}
	if err := mf.Validate(); err != nil {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Pass: verify.PassStructure, Severity: verify.SevError, DAG: -1, Instr: -1,
			Msg: fmt.Sprintf("mapfile invalid: %v", err)})
		res.NumError = 1
		return res, nil
	}
	res.Diags = append(res.Diags, verify.Diagnostic{
		Pass: verify.PassStructure, Severity: verify.SevInfo, DAG: -1, Instr: -1,
		Msg: "mapfile structurally valid (no module given: probe and consistency passes skipped)"})
	res.NumInfo = 1
	return res, nil
}
