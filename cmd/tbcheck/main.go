// tbcheck statically verifies instrumentation invariants: probe
// coverage, probe safety, module/mapfile consistency, and trace-record
// decodability (the internal/verify pass suite). It accepts MiniC
// source (.mc, compiled and instrumented in memory), instrumented
// binary modules (.tbm, with the mapfile found alongside or given via
// -map), or bare mapfiles (.map.json, structural validation only).
//
//	tbcheck app.mc
//	tbcheck -json build/app.tb.tbm
//	tbcheck -map build/app.map.json build/app.tb.tbm
//	tbcheck -broken internal/verify/testdata/corpus/*.tbm
//
// Exit status: 0 clean (or, with -broken, every input flagged), 1 at
// least one error-level diagnostic (with -werror: or warning), 2 bad
// usage or unreadable input. With -json, one JSON result object is
// printed per input, one per line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	json     bool
	werror   bool
	broken   bool
	passes   string
	maxPaths int
	mapPath  string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tbcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.BoolVar(&cfg.json, "json", false, "emit one JSON result per input instead of text diagnostics")
	fs.BoolVar(&cfg.werror, "werror", false, "treat warnings as errors for the exit status")
	fs.BoolVar(&cfg.broken, "broken", false, "negative mode: every input must produce at least one error")
	fs.StringVar(&cfg.passes, "passes", "", "comma-separated pass subset (default all): "+strings.Join(verify.AllPasses(), ","))
	fs.IntVar(&cfg.maxPaths, "maxpaths", 0, "cap on per-DAG path enumeration (0 = default)")
	fs.StringVar(&cfg.mapPath, "map", "", "explicit mapfile for a .tbm input (default: sibling <name>.map.json)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tbcheck [flags] <input.mc|input.tbm|input.map.json> ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if cfg.mapPath != "" && fs.NArg() > 1 {
		fmt.Fprintln(stderr, "tbcheck: -map applies to a single .tbm input")
		return 2
	}

	opts := verify.Options{MaxPaths: cfg.maxPaths}
	if cfg.passes != "" {
		opts.Passes = strings.Split(cfg.passes, ",")
		known := map[string]bool{}
		for _, p := range verify.AllPasses() {
			known[p] = true
		}
		for _, p := range opts.Passes {
			if !known[p] {
				fmt.Fprintf(stderr, "tbcheck: unknown pass %q\n", p)
				return 2
			}
		}
	}

	status := 0
	for _, in := range fs.Args() {
		res, err := checkOne(in, cfg, opts)
		if err != nil {
			fmt.Fprintf(stderr, "tbcheck: %s: %v\n", in, err)
			return 2
		}
		if cfg.json {
			if err := res.WriteJSON(stdout); err != nil {
				fmt.Fprintln(stderr, "tbcheck:", err)
				return 2
			}
		} else {
			res.WriteText(stdout)
		}
		failed := res.NumError > 0 || (cfg.werror && res.NumWarn > 0)
		if cfg.broken {
			if res.NumError == 0 {
				fmt.Fprintf(stderr, "tbcheck: %s: expected error-level diagnostics, found none\n", in)
				status = max(status, 1)
			} else if !cfg.json {
				fmt.Fprintf(stdout, "%s: flagged as expected (%d errors)\n", in, res.NumError)
			}
			continue
		}
		if failed {
			status = max(status, 1)
		} else if !cfg.json {
			fmt.Fprintf(stdout, "%s: %s verified clean (%d warnings)\n", in, res.Module, res.NumWarn)
		}
	}
	return status
}

// checkOne verifies a single input path.
func checkOne(in string, cfg config, opts verify.Options) (*verify.Result, error) {
	switch {
	case strings.HasSuffix(in, ".map.json"):
		return checkMapOnly(in)
	case strings.HasSuffix(in, ".mc") || strings.HasSuffix(in, ".c"):
		return checkSource(in, opts)
	default:
		return checkModule(in, cfg.mapPath, opts)
	}
}

// checkSource compiles and instruments MiniC source in memory, then
// verifies the instrumenter's own output.
func checkSource(in string, opts verify.Options) (*verify.Result, error) {
	src, err := os.ReadFile(in)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(strings.TrimSuffix(filepath.Base(in), ".mc"), ".c")
	mod, err := minic.Compile(name, filepath.Base(in), string(src))
	if err != nil {
		return nil, err
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		return nil, err
	}
	return verify.Verify(res.Module, res.Map, opts), nil
}

// checkModule reads an instrumented .tbm and pairs it with a mapfile:
// the -map flag, or a sibling <base>.map.json (with an optional .tb
// infix, matching tbinstr's naming). A missing sibling degrades to
// module-only verification.
func checkModule(in, mapPath string, opts verify.Options) (*verify.Result, error) {
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	m, err := module.Read(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if mapPath == "" {
		base := strings.TrimSuffix(in, ".tbm")
		base = strings.TrimSuffix(base, ".tb")
		if _, err := os.Stat(base + ".map.json"); err == nil {
			mapPath = base + ".map.json"
		}
	}
	var mf *module.MapFile
	if mapPath != "" {
		f, err := os.Open(mapPath)
		if err != nil {
			return nil, err
		}
		mf, err = module.LoadMapFile(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return verify.Verify(m, mf, opts), nil
}

// checkMapOnly structurally validates a bare mapfile.
func checkMapOnly(in string) (*verify.Result, error) {
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	mf, err := module.LoadMapFile(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	res := &verify.Result{Module: mf.ModuleName}
	if err := mf.Validate(); err != nil {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Pass: verify.PassStructure, Severity: verify.SevError, DAG: -1, Instr: -1,
			Msg: fmt.Sprintf("mapfile invalid: %v", err)})
		res.NumError = 1
		return res, nil
	}
	res.Diags = append(res.Diags, verify.Diagnostic{
		Pass: verify.PassStructure, Severity: verify.SevInfo, DAG: -1, Instr: -1,
		Msg: "mapfile structurally valid (no module given: probe and consistency passes skipped)"})
	res.NumInfo = 1
	return res, nil
}
