package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/verify/seed"
)

const appSrc = `int f(int x) {
	if (x > 2) {
		return x * 3;
	}
	return x + 1;
}
int main() {
	print_int(f(getarg()));
	exit(0);
}`

// writeFixture writes app.mc plus an instrumented app.tb.tbm and its
// sibling app.map.json into a temp dir.
func writeFixture(t *testing.T) (dir, mcPath, tbmPath, mapPath string) {
	t.Helper()
	dir = t.TempDir()
	mcPath = filepath.Join(dir, "app.mc")
	if err := os.WriteFile(mcPath, []byte(appSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := minic.Compile("app", "app.mc", appSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbmPath = filepath.Join(dir, "app.tb.tbm")
	f, err := os.Create(tbmPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Module.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	mapPath = filepath.Join(dir, "app.map.json")
	f, err = os.Create(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Map.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return dir, mcPath, tbmPath, mapPath
}

func TestCheckSourceClean(t *testing.T) {
	_, mc, _, _ := writeFixture(t)
	var out, errb bytes.Buffer
	if code := run([]string{mc}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("verified clean")) {
		t.Errorf("missing clean summary in: %s", out.String())
	}
}

func TestCheckModuleWithSiblingMap(t *testing.T) {
	_, _, tbm, _ := writeFixture(t)
	var out, errb bytes.Buffer
	if code := run([]string{tbm}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	// The sibling map was found, so no "no mapfile" info diag should
	// have been emitted.
	if bytes.Contains(out.Bytes(), []byte("no mapfile")) {
		t.Errorf("sibling mapfile not picked up: %s", out.String())
	}
}

func TestCheckExplicitMapFlag(t *testing.T) {
	_, _, tbm, mp := writeFixture(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-map", mp, tbm}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}

func TestCheckMapOnly(t *testing.T) {
	_, _, _, mp := writeFixture(t)
	var out, errb bytes.Buffer
	if code := run([]string{mp}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("structurally valid")) {
		t.Errorf("map-only output: %s", out.String())
	}
}

func TestCheckJSONOutput(t *testing.T) {
	_, mc, _, _ := writeFixture(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", mc}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var res struct {
		Module string `json:"module"`
		Errors int    `json:"errors"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if res.Module != "app" || res.Errors != 0 {
		t.Errorf("JSON result = %+v", res)
	}
}

// TestCheckBrokenCorpus drives the CLI the way make check does: the
// seeded-broken modules must all be flagged (-broken exit 0), and
// without -broken the same inputs must fail.
func TestCheckBrokenCorpus(t *testing.T) {
	dir := t.TempDir()
	cases, err := seed.Cases()
	if err != nil {
		t.Fatal(err)
	}
	var broken []string
	for _, c := range cases {
		if c.Pass == "" {
			continue
		}
		tbm := filepath.Join(dir, c.Name+".tbm")
		f, err := os.Create(tbm)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Module.WriteTo(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		mf, err := os.Create(filepath.Join(dir, c.Name+".map.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Map.Save(mf); err != nil {
			t.Fatal(err)
		}
		mf.Close()
		broken = append(broken, tbm)
	}
	var out, errb bytes.Buffer
	if code := run(append([]string{"-broken"}, broken...), &out, &errb); code != 0 {
		t.Fatalf("-broken over seeded corpus: exit %d, stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(broken, &out, &errb); code != 1 {
		t.Fatalf("broken modules without -broken: exit %d, want 1", code)
	}
}

// writeFleetCorpus materializes seed.FleetCases as one directory of
// .tbm files per case, the layout genbroken commits and -fleet -broken
// consumes.
func writeFleetCorpus(t *testing.T) (clean string, broken []string) {
	t.Helper()
	dir := t.TempDir()
	cases, err := seed.FleetCases()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		caseDir := filepath.Join(dir, c.Name)
		if err := os.MkdirAll(caseDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, fm := range c.Modules {
			f, err := os.Create(filepath.Join(caseDir, fm.Name+".tbm"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fm.Module.WriteTo(f); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
		if c.Pass == "" {
			clean = caseDir
		} else {
			broken = append(broken, caseDir)
		}
	}
	if clean == "" || len(broken) == 0 {
		t.Fatal("fleet corpus lacks a clean or broken case")
	}
	return clean, broken
}

func TestCheckFleetClean(t *testing.T) {
	clean, _ := writeFleetCorpus(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-fleet", clean}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("fleet of 2 module(s) verified clean")) {
		t.Errorf("missing clean fleet summary in: %s", out.String())
	}
}

func TestCheckFleetBrokenCorpus(t *testing.T) {
	_, broken := writeFleetCorpus(t)
	var out, errb bytes.Buffer
	if code := run(append([]string{"-fleet", "-broken"}, broken...), &out, &errb); code != 0 {
		t.Fatalf("-fleet -broken over seeded corpus: exit %d, stderr: %s", code, errb.String())
	}
	// Each broken case is its own fleet and must fail without -broken.
	for _, caseDir := range broken {
		out.Reset()
		errb.Reset()
		if code := run([]string{"-fleet", caseDir}, &out, &errb); code != 1 {
			t.Errorf("%s without -broken: exit %d, want 1", caseDir, code)
		}
	}
}

func TestCheckFleetJSON(t *testing.T) {
	clean, _ := writeFleetCorpus(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-fleet", "-json", clean}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var res struct {
		Modules []string `json:"modules"`
		Errors  int      `json:"errors"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(res.Modules) != 2 || res.Errors != 0 {
		t.Errorf("fleet JSON result = %+v", res)
	}
}

func TestCheckFleetSourceInputs(t *testing.T) {
	// .mc inputs are compiled and instrumented in memory, like the
	// single-module path — one fleet over the crossmachine example.
	var out, errb bytes.Buffer
	args := []string{"-fleet",
		"../../examples/crossmachine/client.mc",
		"../../examples/crossmachine/server.mc",
		"../../examples/crossmachine/strlib.mc"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("endpoint 9 by")) {
		t.Errorf("missing RPC graph summary in: %s", out.String())
	}
}

func TestCheckFleetUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fleet", "-passes", "nosuch", "x.tbm"}, &out, &errb); code != 2 {
		t.Errorf("unknown fleet pass: exit %d, want 2", code)
	}
	if code := run([]string{"-fleet", "-map", "m.map.json", "x.tbm"}, &out, &errb); code != 2 {
		t.Errorf("-fleet with -map: exit %d, want 2", code)
	}
	if code := run([]string{"-fleet", "/nonexistent"}, &out, &errb); code != 2 {
		t.Errorf("unreadable fleet input: exit %d, want 2", code)
	}
}

func TestCheckUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-passes", "nosuch", "x.mc"}, &out, &errb); code != 2 {
		t.Errorf("unknown pass: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/zz.mc"}, &out, &errb); code != 2 {
		t.Errorf("unreadable input: exit %d, want 2", code)
	}
}
