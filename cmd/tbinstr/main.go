// tbinstr statically instruments a module: it accepts MiniC source
// (.mc, compiled first) or a binary module (.tbm) and writes the
// instrumented module plus its reconstruction mapfile — the offline
// half of TraceBack (paper §2).
//
//	tbinstr -o build app.mc
//	tbinstr -dagbase 4096 -basefile bases.json lib.tbm
//	tbinstr -o build -fleetwith build/server.tb.tbm client.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/verify"
	"traceback/internal/verify/fleet"
)

func main() {
	var (
		outDir    = flag.String("o", ".", "output directory")
		dagBase   = flag.Uint("dagbase", 0, "default DAG ID base for the module")
		maxBits   = flag.Int("maxbits", 0, "cap on path bits per DAG record (0 = format maximum)")
		forceSp   = flag.Bool("forcespill", false, "ablation: always spill for lightweight probes")
		noBreak   = flag.Bool("nobreakatcalls", false, "ablation: omit call-return probes (UNSOUND reconstruction)")
		baseFile  = flag.String("basefile", "", "DAG base file (JSON) assigning bases by module name")
		emitPlain = flag.Bool("emit-module", false, "with .mc input: also write the uninstrumented module")
		doVerify  = flag.Bool("verify", true, "statically verify the instrumented output; refuse to write on errors")
		fleetWith = flag.String("fleetwith", "", "comma-separated .tbm peers: cross-module verify the output against them; refuse to write on errors")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tbinstr [flags] <module.mc|module.tbm>")
		flag.Usage()
		os.Exit(2)
	}
	in := flag.Arg(0)

	var mod *module.Module
	var err error
	switch {
	case strings.HasSuffix(in, ".mc") || strings.HasSuffix(in, ".c"):
		src, rerr := os.ReadFile(in)
		if rerr != nil {
			fatal(rerr)
		}
		name := strings.TrimSuffix(strings.TrimSuffix(filepath.Base(in), ".mc"), ".c")
		mod, err = minic.Compile(name, filepath.Base(in), string(src))
	default:
		f, rerr := os.Open(in)
		if rerr != nil {
			fatal(rerr)
		}
		mod, err = module.Read(f)
		f.Close()
	}
	if err != nil {
		fatal(err)
	}

	opts := core.Options{
		DAGBase:        uint32(*dagBase),
		MaxPathBits:    *maxBits,
		ForceSpill:     *forceSp,
		NoBreakAtCalls: *noBreak,
	}
	if *baseFile != "" {
		f, err := os.Open(*baseFile)
		if err != nil {
			fatal(err)
		}
		bases, err := module.LoadDAGBases(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if b, ok := bases.Bases[mod.Name]; ok {
			opts.DAGBase = b
		}
	}

	res, err := core.Instrument(mod, opts)
	if err != nil {
		fatal(err)
	}

	if *doVerify {
		vres := verify.Verify(res.Module, res.Map, verify.Options{})
		for _, d := range vres.Diags {
			if d.Severity != verify.SevInfo {
				fmt.Fprintln(os.Stderr, "tbinstr:", d)
			}
		}
		if !vres.Ok() {
			fatal(fmt.Errorf("%s failed static verification (%d errors); refusing to write (use -verify=false to override)",
				mod.Name, vres.NumError))
		}
	}

	if *fleetWith != "" {
		inputs := []fleet.Input{{Module: res.Module, Path: in}}
		for _, peer := range strings.Split(*fleetWith, ",") {
			f, err := os.Open(peer)
			if err != nil {
				fatal(err)
			}
			pm, err := module.Read(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", peer, err))
			}
			inputs = append(inputs, fleet.Input{Module: pm, Path: peer})
		}
		fres := fleet.Verify(inputs, fleet.Options{})
		for _, d := range fres.Diags {
			if d.Severity != verify.SevInfo {
				fmt.Fprintln(os.Stderr, "tbinstr:", d)
			}
		}
		if !fres.Ok() {
			fatal(fmt.Errorf("%s failed cross-module verification against %s (%d errors); refusing to write",
				mod.Name, *fleetWith, fres.NumError))
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, w func(*os.File) error) string {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := w(f); err != nil {
			fatal(err)
		}
		f.Close()
		return path
	}
	if *emitPlain {
		p := write(mod.Name+".tbm", func(f *os.File) error { _, err := mod.WriteTo(f); return err })
		fmt.Printf("wrote %s (uninstrumented)\n", p)
	}
	modPath := write(mod.Name+".tb.tbm", func(f *os.File) error { _, err := res.Module.WriteTo(f); return err })
	mapPath := write(mod.Name+".map.json", func(f *os.File) error { return res.Map.Save(f) })

	s := res.Stats
	fmt.Printf("wrote %s and %s\n", modPath, mapPath)
	fmt.Printf("%s: %d funcs, %d blocks -> %d DAGs; %d heavy + %d light probes (%d spills); text +%.0f%%; checksum %s\n",
		mod.Name, s.Funcs, s.Blocks, s.DAGs, s.HeavyProbes, s.LightProbes, s.Spills,
		s.CodeGrowth()*100, res.Module.ChecksumHex())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbinstr:", err)
	os.Exit(1)
}
