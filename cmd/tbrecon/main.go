// tbrecon reconstructs snap files into line-by-line source traces
// (paper §4). Given several snaps from related runtimes it stitches
// them into logical threads (paper §5).
//
//	tbrecon -maps build snaps/app-1.snap.json
//	tbrecon -maps build -logical snaps/client-1.snap.json snaps/server-1.snap.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"traceback/internal/module"
	"traceback/internal/recon"
	"traceback/internal/snap"
)

func main() {
	var (
		mapsDir    = flag.String("maps", ".", "directory containing *.map.json mapfiles")
		srcDir     = flag.String("src", "", "directory containing source files (optional, for source text)")
		logical    = flag.Bool("logical", false, "stitch multiple snaps into logical threads")
		interleave = flag.Bool("interleave", false, "print the merged multi-thread view")
		flat       = flag.Bool("flat", false, "disable call-hierarchy indentation")
		maxEvents  = flag.Int("max", 0, "cap events shown per thread (0 = all)")
		showVars   = flag.Bool("vars", false, "print global variable values from the snap's memory dump")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tbrecon [flags] <snap.json> [more snaps...]")
		flag.Usage()
		os.Exit(2)
	}

	maps := recon.NewMapSet()
	paths, err := filepath.Glob(filepath.Join(*mapsDir, "*.map.json"))
	if err != nil {
		fatal(err)
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fatal(err)
		}
		mf, err := module.LoadMapFile(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p, err))
		}
		maps.Add(mf)
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "tbrecon: warning: no mapfiles found in %s\n", *mapsDir)
	}

	opts := recon.RenderOptions{Flat: *flat, MaxEvents: *maxEvents}
	if *srcDir != "" {
		cache := map[string][]string{}
		opts.Source = func(file string) []string {
			if lines, ok := cache[file]; ok {
				return lines
			}
			b, err := os.ReadFile(filepath.Join(*srcDir, filepath.Base(file)))
			if err != nil {
				cache[file] = nil
				return nil
			}
			lines := strings.Split(string(b), "\n")
			cache[file] = lines
			return lines
		}
	}

	var pts []*recon.ProcessTrace
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		s, err := snap.LoadAuto(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		pt, err := recon.Reconstruct(s, maps)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		pts = append(pts, pt)
		if *showVars {
			recon.RenderVariables(os.Stdout, s, maps)
			fmt.Println()
		}
	}

	switch {
	case *logical:
		mt := recon.Stitch(pts)
		fmt.Printf("stitched %d snap(s) into %d logical thread(s)\n", len(pts), len(mt.Logical))
		for pair, skew := range mt.SkewEstimates {
			fmt.Printf("clock skew estimate: runtime %x -> %x: %d cycles\n", pair[0], pair[1], skew)
		}
		fmt.Println()
		for _, lt := range mt.Logical {
			recon.RenderLogical(os.Stdout, lt, opts)
			fmt.Println()
		}
	case *interleave:
		for _, pt := range pts {
			recon.RenderInterleaved(os.Stdout, pt)
		}
	default:
		for _, pt := range pts {
			recon.Render(os.Stdout, pt, opts)
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbrecon:", err)
	os.Exit(1)
}
