// tbrecon reconstructs snap files into line-by-line source traces
// (paper §4). Given several snaps from related runtimes it stitches
// them into logical threads (paper §5). Snaps are reconstructed on a
// parallel pipeline (-jobs) that shares one checksum-keyed mapfile
// cache across all of them; a directory argument is batch mode and
// expands to every snap file inside it.
//
//	tbrecon -maps build snaps/app-1.snap.json
//	tbrecon -maps build -jobs 8 snaps/
//	tbrecon -maps build -logical snaps/client-1.snap.json snaps/server-1.snap.json
//	tbrecon -maps build -metrics - snaps/   # Prometheus exposition on stderr
//
// The rendered trace is the only thing written to stdout; -stats and
// -metrics report on stderr (or to a file) so piped output stays
// byte-identical whether or not telemetry is requested.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"traceback/internal/recon"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, stdout, stderr, exit
// status) made explicit so tests can drive the CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tbrecon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mapsDir    = fs.String("maps", ".", "directory containing *.map.json mapfiles")
		srcDir     = fs.String("src", "", "directory containing source files (optional, for source text)")
		jobs       = fs.Int("jobs", 0, "reconstruction worker count (0 = GOMAXPROCS)")
		logical    = fs.Bool("logical", false, "stitch multiple snaps into logical threads")
		interleave = fs.Bool("interleave", false, "print the merged multi-thread view")
		flat       = fs.Bool("flat", false, "disable call-hierarchy indentation")
		maxEvents  = fs.Int("max", 0, "cap events shown per thread (0 = all)")
		showVars   = fs.Bool("vars", false, "print global variable values from the snap's memory dump")
		showStats  = fs.Bool("stats", false, "print pipeline counters to stderr when done")
		metricsTo  = fs.String("metrics", "", "write pipeline metrics to this file when done (- = stderr; .json = JSON, else Prometheus text)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: tbrecon [flags] <snap.json | snap-dir> [more...]")
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tbrecon:", err)
		return 1
	}

	// Mapfiles load lazily, keyed by checksum: the batch pipeline
	// parses each one at most once no matter how many snaps share it.
	loader, err := recon.NewDirLoader(*mapsDir)
	if err != nil {
		return fail(err)
	}
	if loader.NumFiles() == 0 {
		fmt.Fprintf(stderr, "tbrecon: warning: no mapfiles found in %s\n", *mapsDir)
	}
	cache := recon.NewMapCache(loader.Load)

	// Deduplicate across arguments too: `tbrecon snaps/ snaps/a.snap.json`
	// must reconstruct (and render) a.snap.json once, not twice.
	var sources []recon.Source
	seen := map[string]bool{}
	for _, arg := range fs.Args() {
		paths, err := expandArg(arg, stderr)
		if err != nil {
			return fail(err)
		}
		for _, p := range paths {
			if seen[p] {
				continue
			}
			seen[p] = true
			sources = append(sources, recon.FileSource(p))
		}
	}
	if len(sources) == 0 {
		return fail(fmt.Errorf("no snap files found in %s", strings.Join(fs.Args(), ", ")))
	}

	opts := recon.RenderOptions{Flat: *flat, MaxEvents: *maxEvents}
	if *srcDir != "" {
		cache := recon.NewSourceCache(func(file string) []string {
			b, err := os.ReadFile(filepath.Join(*srcDir, filepath.Base(file)))
			if err != nil {
				return nil
			}
			return strings.Split(string(b), "\n")
		})
		opts.Source = cache.Lines
	}

	pipe := recon.NewPipeline(cache, *jobs)
	results := pipe.Run(sources)

	// A failed source must not sink the rest of the batch: report it,
	// reconstruct everything else, exit nonzero at the end.
	failed := 0
	var pts []*recon.ProcessTrace
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintln(stderr, "tbrecon:", res.Err)
			failed++
			continue
		}
		pts = append(pts, res.Trace)
		if *showVars {
			recon.RenderVariables(stdout, res.Trace.Snap, cache)
			fmt.Fprintln(stdout)
		}
	}
	if len(pts) == 0 {
		return 1
	}

	switch {
	case *logical:
		mt := recon.Stitch(pts)
		fmt.Fprintf(stdout, "stitched %d snap(s) into %d logical thread(s)\n", len(pts), len(mt.Logical))
		for pair, skew := range mt.SkewEstimates {
			fmt.Fprintf(stdout, "clock skew estimate: runtime %x -> %x: %d cycles\n", pair[0], pair[1], skew)
		}
		fmt.Fprintln(stdout)
		for _, lt := range mt.Logical {
			recon.RenderLogical(stdout, lt, opts)
			fmt.Fprintln(stdout)
		}
	case *interleave:
		for _, pt := range pts {
			recon.RenderInterleaved(stdout, pt)
		}
	default:
		for _, pt := range pts {
			recon.Render(stdout, pt, opts)
			fmt.Fprintln(stdout)
		}
	}

	if *showStats {
		fmt.Fprintf(stderr, "tbrecon: %s (jobs %d)\n", pipe.Snapshot(), pipe.Jobs())
	}
	if *metricsTo != "" {
		if err := writeMetrics(*metricsTo, stderr, pipe); err != nil {
			return fail(err)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// writeMetrics emits the pipeline registry: "-" goes to stderr so
// stdout stays byte-clean for piped trace output; a path ending in
// .json gets the JSON form, anything else Prometheus text.
func writeMetrics(dest string, stderr io.Writer, pipe *recon.Pipeline) error {
	if dest == "-" {
		return pipe.Registry().WritePrometheus(stderr)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(dest, ".json") {
		return pipe.Registry().WriteJSON(f)
	}
	return pipe.Registry().WritePrometheus(f)
}

// expandArg turns a snap file path into itself and a directory into
// its sorted, deduplicated snap files (batch mode). A directory that
// mixes snaps with other files is fine: non-snap entries are skipped
// with a warning instead of sinking the whole batch.
func expandArg(arg string, warn io.Writer) ([]string, error) {
	st, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return []string{arg}, nil
	}
	entries, err := os.ReadDir(arg)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !isSnapName(name) {
			fmt.Fprintf(warn, "tbrecon: skipping %s: not a snap file\n", filepath.Join(arg, name))
			continue
		}
		p := filepath.Join(arg, name)
		if seen[p] {
			continue
		}
		seen[p] = true
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("%s: no *.snap.json[.gz] files", arg)
	}
	return paths, nil
}

func isSnapName(name string) bool {
	return strings.HasSuffix(name, ".snap.json") || strings.HasSuffix(name, ".snap.json.gz")
}
