// tbrecon reconstructs snap files into line-by-line source traces
// (paper §4). Given several snaps from related runtimes it stitches
// them into logical threads (paper §5). Snaps are reconstructed on a
// parallel pipeline (-jobs) that shares one checksum-keyed mapfile
// cache across all of them; a directory argument is batch mode and
// expands to every snap file inside it.
//
//	tbrecon -maps build snaps/app-1.snap.json
//	tbrecon -maps build -jobs 8 snaps/
//	tbrecon -maps build -logical snaps/client-1.snap.json snaps/server-1.snap.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"traceback/internal/recon"
)

func main() {
	var (
		mapsDir    = flag.String("maps", ".", "directory containing *.map.json mapfiles")
		srcDir     = flag.String("src", "", "directory containing source files (optional, for source text)")
		jobs       = flag.Int("jobs", 0, "reconstruction worker count (0 = GOMAXPROCS)")
		logical    = flag.Bool("logical", false, "stitch multiple snaps into logical threads")
		interleave = flag.Bool("interleave", false, "print the merged multi-thread view")
		flat       = flag.Bool("flat", false, "disable call-hierarchy indentation")
		maxEvents  = flag.Int("max", 0, "cap events shown per thread (0 = all)")
		showVars   = flag.Bool("vars", false, "print global variable values from the snap's memory dump")
		showStats  = flag.Bool("stats", false, "print pipeline counters to stderr when done")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tbrecon [flags] <snap.json | snap-dir> [more...]")
		flag.Usage()
		os.Exit(2)
	}

	// Mapfiles load lazily, keyed by checksum: the batch pipeline
	// parses each one at most once no matter how many snaps share it.
	loader, err := recon.NewDirLoader(*mapsDir)
	if err != nil {
		fatal(err)
	}
	if loader.NumFiles() == 0 {
		fmt.Fprintf(os.Stderr, "tbrecon: warning: no mapfiles found in %s\n", *mapsDir)
	}
	cache := recon.NewMapCache(loader.Load)

	var sources []recon.Source
	for _, arg := range flag.Args() {
		paths, err := expandArg(arg)
		if err != nil {
			fatal(err)
		}
		for _, p := range paths {
			sources = append(sources, recon.FileSource(p))
		}
	}
	if len(sources) == 0 {
		fatal(fmt.Errorf("no snap files found in %s", strings.Join(flag.Args(), ", ")))
	}

	opts := recon.RenderOptions{Flat: *flat, MaxEvents: *maxEvents}
	if *srcDir != "" {
		cache := recon.NewSourceCache(func(file string) []string {
			b, err := os.ReadFile(filepath.Join(*srcDir, filepath.Base(file)))
			if err != nil {
				return nil
			}
			return strings.Split(string(b), "\n")
		})
		opts.Source = cache.Lines
	}

	pipe := recon.NewPipeline(cache, *jobs)
	results := pipe.Run(sources)

	// A failed source must not sink the rest of the batch: report it,
	// reconstruct everything else, exit nonzero at the end.
	failed := 0
	var pts []*recon.ProcessTrace
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintln(os.Stderr, "tbrecon:", res.Err)
			failed++
			continue
		}
		pts = append(pts, res.Trace)
		if *showVars {
			recon.RenderVariables(os.Stdout, res.Trace.Snap, cache)
			fmt.Println()
		}
	}
	if len(pts) == 0 {
		os.Exit(1)
	}

	switch {
	case *logical:
		mt := recon.Stitch(pts)
		fmt.Printf("stitched %d snap(s) into %d logical thread(s)\n", len(pts), len(mt.Logical))
		for pair, skew := range mt.SkewEstimates {
			fmt.Printf("clock skew estimate: runtime %x -> %x: %d cycles\n", pair[0], pair[1], skew)
		}
		fmt.Println()
		for _, lt := range mt.Logical {
			recon.RenderLogical(os.Stdout, lt, opts)
			fmt.Println()
		}
	case *interleave:
		for _, pt := range pts {
			recon.RenderInterleaved(os.Stdout, pt)
		}
	default:
		for _, pt := range pts {
			recon.Render(os.Stdout, pt, opts)
			fmt.Println()
		}
	}

	if *showStats {
		fmt.Fprintf(os.Stderr, "tbrecon: %s (jobs %d)\n", pipe.Snapshot(), pipe.Jobs())
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// expandArg turns a snap file path into itself and a directory into
// its sorted snap files (batch mode).
func expandArg(arg string) ([]string, error) {
	st, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return []string{arg}, nil
	}
	var paths []string
	for _, pat := range []string{"*.snap.json", "*.snap.json.gz"} {
		got, err := filepath.Glob(filepath.Join(arg, pat))
		if err != nil {
			return nil, err
		}
		paths = append(paths, got...)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("%s: no *.snap.json[.gz] files", arg)
	}
	return paths, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbrecon:", err)
	os.Exit(1)
}
