package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// writeFixture compiles a faulting program, runs it under the
// runtime, and writes the snap + mapfile into dir for the CLI.
func writeFixture(t *testing.T, dir string) (snapPath string) {
	t.Helper()
	mod, err := minic.Compile("app", "app.mc", `int main() {
	int z = 0;
	exit(1 / z);
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	w.Run(50_000, func() bool { return p.Exited })
	snaps := rt.Snaps()
	if len(snaps) == 0 {
		t.Fatal("no snap from faulting program")
	}

	mf, err := os.Create(filepath.Join(dir, "app.map.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Map.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	snapPath = filepath.Join(dir, "app-1.snap.json")
	sf, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := snaps[0].Save(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	return snapPath
}

// TestStdoutByteCleanWithTelemetry is the -metrics/-stats regression
// guard: the rendered trace on stdout must be byte-identical whether
// or not telemetry output is requested, because telemetry goes to
// stderr (or a file) only.
func TestStdoutByteCleanWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	snapPath := writeFixture(t, dir)

	var plainOut, plainErr bytes.Buffer
	if code := run([]string{"-maps", dir, snapPath}, &plainOut, &plainErr); code != 0 {
		t.Fatalf("plain run exited %d: %s", code, plainErr.String())
	}
	if plainOut.Len() == 0 {
		t.Fatal("plain run rendered nothing")
	}

	var telOut, telErr bytes.Buffer
	code := run([]string{"-maps", dir, "-stats", "-metrics", "-", snapPath}, &telOut, &telErr)
	if code != 0 {
		t.Fatalf("telemetry run exited %d: %s", code, telErr.String())
	}
	if !bytes.Equal(plainOut.Bytes(), telOut.Bytes()) {
		t.Errorf("stdout differs with telemetry enabled:\n--- plain ---\n%s\n--- with -stats -metrics ---\n%s",
			plainOut.String(), telOut.String())
	}
	if !strings.Contains(telErr.String(), "recon_snaps_total") {
		t.Errorf("stderr missing Prometheus exposition:\n%s", telErr.String())
	}
	if !strings.Contains(telErr.String(), "tbrecon: snaps 1") {
		t.Errorf("stderr missing -stats line:\n%s", telErr.String())
	}
}

// TestMetricsFileJSON checks the .json branch of -metrics.
func TestMetricsFileJSON(t *testing.T) {
	dir := t.TempDir()
	snapPath := writeFixture(t, dir)
	metricsPath := filepath.Join(dir, "metrics.json")

	var out, errBuf bytes.Buffer
	if code := run([]string{"-maps", dir, "-metrics", metricsPath, snapPath}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	b, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"recon_snaps_total": 1`) {
		t.Errorf("metrics JSON missing snap count:\n%s", b)
	}
}
