package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// writeFixture compiles a faulting program, runs it under the
// runtime, and writes the snap + mapfile into dir for the CLI.
func writeFixture(t *testing.T, dir string) (snapPath string) {
	t.Helper()
	mod, err := minic.Compile("app", "app.mc", `int main() {
	int z = 0;
	exit(1 / z);
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(1)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	w.Run(50_000, func() bool { return p.Exited })
	snaps := rt.Snaps()
	if len(snaps) == 0 {
		t.Fatal("no snap from faulting program")
	}

	mf, err := os.Create(filepath.Join(dir, "app.map.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Map.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	snapPath = filepath.Join(dir, "app-1.snap.json")
	sf, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := snaps[0].Save(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	return snapPath
}

// TestStdoutByteCleanWithTelemetry is the -metrics/-stats regression
// guard: the rendered trace on stdout must be byte-identical whether
// or not telemetry output is requested, because telemetry goes to
// stderr (or a file) only.
func TestStdoutByteCleanWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	snapPath := writeFixture(t, dir)

	var plainOut, plainErr bytes.Buffer
	if code := run([]string{"-maps", dir, snapPath}, &plainOut, &plainErr); code != 0 {
		t.Fatalf("plain run exited %d: %s", code, plainErr.String())
	}
	if plainOut.Len() == 0 {
		t.Fatal("plain run rendered nothing")
	}

	var telOut, telErr bytes.Buffer
	code := run([]string{"-maps", dir, "-stats", "-metrics", "-", snapPath}, &telOut, &telErr)
	if code != 0 {
		t.Fatalf("telemetry run exited %d: %s", code, telErr.String())
	}
	if !bytes.Equal(plainOut.Bytes(), telOut.Bytes()) {
		t.Errorf("stdout differs with telemetry enabled:\n--- plain ---\n%s\n--- with -stats -metrics ---\n%s",
			plainOut.String(), telOut.String())
	}
	if !strings.Contains(telErr.String(), "recon_snaps_total") {
		t.Errorf("stderr missing Prometheus exposition:\n%s", telErr.String())
	}
	if !strings.Contains(telErr.String(), "tbrecon: snaps 1") {
		t.Errorf("stderr missing -stats line:\n%s", telErr.String())
	}
}

// TestMetricsFileJSON checks the .json branch of -metrics.
func TestMetricsFileJSON(t *testing.T) {
	dir := t.TempDir()
	snapPath := writeFixture(t, dir)
	metricsPath := filepath.Join(dir, "metrics.json")

	var out, errBuf bytes.Buffer
	if code := run([]string{"-maps", dir, "-metrics", metricsPath, snapPath}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	b, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"recon_snaps_total": 1`) {
		t.Errorf("metrics JSON missing snap count:\n%s", b)
	}
}

// TestDirectoryMixedEntries: a snap directory that also holds
// mapfiles, sources, or stray subdirectories must still batch-expand;
// each non-snap entry is skipped with a warning, not an error.
func TestDirectoryMixedEntries(t *testing.T) {
	dir := t.TempDir()
	snapPath := writeFixture(t, dir) // writes app-1.snap.json + app.map.json
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a snap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}

	var out, errBuf bytes.Buffer
	if code := run([]string{"-maps", dir, dir}, &out, &errBuf); code != 0 {
		t.Fatalf("mixed dir exited %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "snap: process") {
		t.Errorf("no trace rendered:\n%s", out.String())
	}
	for _, skipped := range []string{"README.txt", "app.map.json", "sub"} {
		if !strings.Contains(errBuf.String(), "skipping") || !strings.Contains(errBuf.String(), skipped) {
			t.Errorf("stderr missing skip warning for %s:\n%s", skipped, errBuf.String())
		}
	}

	// The warnings must not leak onto stdout (piped output stays clean).
	if strings.Contains(out.String(), "skipping") {
		t.Error("skip warnings leaked to stdout")
	}

	// Same directory, snap passed explicitly too: exactly one render.
	var out2, errBuf2 bytes.Buffer
	if code := run([]string{"-maps", dir, dir, snapPath}, &out2, &errBuf2); code != 0 {
		t.Fatalf("overlapping args exited %d: %s", code, errBuf2.String())
	}
	if got := strings.Count(out2.String(), "snap: process"); got != 1 {
		t.Errorf("snap rendered %d times, want 1 (dedup across args)\n%s", got, out2.String())
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Error("overlapping args changed rendered output")
	}
}

// TestDirectoryGzipAndPlainDedup: a directory holding the same snap
// in plain and gzip form reconstructs both files (they are distinct
// paths), but each exactly once, in sorted order.
func TestDirectoryGzipAndPlainDedup(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir)
	// Add a gzip twin of the snap.
	raw, err := os.ReadFile(filepath.Join(dir, "app-1.snap.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := snap.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	zf, err := os.Create(filepath.Join(dir, "app-2.snap.json.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCompressed(zf); err != nil {
		t.Fatal(err)
	}
	zf.Close()

	var out, errBuf bytes.Buffer
	if code := run([]string{"-maps", dir, dir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if got := strings.Count(out.String(), "snap: process"); got != 2 {
		t.Errorf("rendered %d snaps, want 2 (one per file, no double-count)\n%s", got, out.String())
	}
}
